"""Throughput of the compiled front end (elaborate + compile + sample).

Three pipelines over the full standard registry, compared in
designs/sec with exact path/stats equality asserted before any speed
claim:

- **reference** — dict-graph ``Module.elaborate()``, reference-engine
  path sampling, per-node statistics loops;
- **compiled (cold)** — flat ``GraphBuilder`` elaboration, CSR array
  sampling, vectorized statistics, results stored into a
  :class:`repro.runtime.FrontendCache`;
- **compiled (warm)** — the same designs replayed entirely from the
  cache (compiled graphs + sampled paths).

Results land in ``BENCH_frontend.json`` at the repo root so the perf
trajectory is tracked in-tree.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.sampler import PathSampler
from repro.designs import standard_designs
from repro.graphir import (Vocabulary, stats_vector, structural_features,
                           weighted_features)
from repro.runtime import FrontendCache, compile_module

from conftest import run_once

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_frontend.json"

# Production defaults (k=5, max_len=64, max_paths=512) — the regime the
# prediction pipeline actually runs in.
SAMPLER = dict(k=5, max_len=64, max_paths=512, seed=0)


def _frontend_reference(entries, vocab):
    """The pre-compiled pipeline: dict elaborate + reference sample + loops."""
    sampler = PathSampler(engine="reference", **SAMPLER)
    out = []
    for e in entries:
        graph = e.module.elaborate()
        paths = sampler.sample(graph)
        stats = (stats_vector(graph, vocab), structural_features(graph),
                 weighted_features(graph))
        out.append((paths, stats))
    return out


def _frontend_compiled(entries, vocab, cache):
    """The compiled pipeline: flat build + array sample + vectorized stats."""
    sampler = PathSampler(engine="array", **SAMPLER)
    out = []
    for e in entries:
        cg = compile_module(e.module, cache=cache)
        paths = cache.sample(cg, sampler)
        stats = (stats_vector(cg, vocab), structural_features(cg),
                 weighted_features(cg))
        out.append((paths, stats))
    return out


def _equal(ref, new) -> bool:
    for (rp, rs), (np_, ns) in zip(ref, new):
        if [(p.node_ids, p.tokens) for p in rp] \
                != [(p.node_ids, p.tokens) for p in np_]:
            return False
        if any(not np.array_equal(a, b) for a, b in zip(rs, ns)):
            return False
    return True


def measure() -> dict:
    entries = standard_designs()
    vocab = Vocabulary.standard()

    # Warm one design through both pipelines first (vocab singleton,
    # numpy init, import costs) and the per-class source fingerprints
    # (``inspect.getsource``, memoized per Module class for the process
    # lifetime) so neither timed loop pays one-off costs.
    from repro.runtime import fingerprint_frontend_module

    _frontend_reference(entries[:1], vocab)
    _frontend_compiled(entries[:1], vocab, FrontendCache())
    for e in entries:
        fingerprint_frontend_module(e.module)

    start = time.perf_counter()
    ref = _frontend_reference(entries, vocab)
    ref_s = time.perf_counter() - start

    cache = FrontendCache()
    start = time.perf_counter()
    cold = _frontend_compiled(entries, vocab, cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = _frontend_compiled(entries, vocab, cache)
    warm_s = time.perf_counter() - start

    return {
        "num_designs": len(entries),
        "sampler": SAMPLER,
        "reference_seconds": ref_s,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "designs_per_second": {
            "reference": len(entries) / ref_s,
            "cold": len(entries) / cold_s,
            "warm": len(entries) / warm_s,
        },
        "cold_speedup": ref_s / cold_s,
        "warm_speedup": ref_s / warm_s,
        "cold_exact": _equal(ref, cold),
        "warm_exact": _equal(ref, warm),
        "cache_stats": cache.stats,
    }


def test_frontend_throughput(benchmark):
    d = run_once(benchmark, measure)

    print("\nCompiled front-end throughput (elaborate + compile + sample):")
    print(f"  reference {d['designs_per_second']['reference']:8.1f} designs/s")
    print(f"  cold      {d['designs_per_second']['cold']:8.1f} designs/s "
          f"({d['cold_speedup']:.2f}x)")
    print(f"  warm      {d['designs_per_second']['warm']:8.1f} designs/s "
          f"({d['warm_speedup']:.2f}x)")
    print(f"  exact: cold={d['cold_exact']} warm={d['warm_exact']}")

    BENCH_JSON.write_text(json.dumps(d, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    # Speed means nothing if the front end drifts: paths and statistics
    # must be exactly equal before any floor applies.
    assert d["cold_exact"]
    assert d["warm_exact"]

    # Acceptance floors: >= 2x cold (flat elaboration + array sampling
    # + vectorized stats), >= 5x warm (FrontendCache replay).
    assert d["cold_speedup"] >= 2.0, d
    assert d["warm_speedup"] >= 5.0, d
