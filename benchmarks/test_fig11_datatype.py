"""Figure 11 — datatype vs hardware efficiency vs model accuracy."""

from repro.experiments import format_table, run_datatype_sweep
from repro.synth import Synthesizer

from conftest import run_once


def test_fig11_datatype_tradeoff(benchmark):
    result = run_once(benchmark,
                      lambda: run_datatype_sweep(Synthesizer(effort="medium")))

    rows = []
    for p in result.points:
        rows.append([p.config.datatype, f"{p.area_um2 * 1e-6:.4f}",
                     f"{p.power_mw:.1f}", f"{p.area_efficiency:.0f}",
                     f"{p.energy_per_inference_uj:.2f}", f"{p.accuracy:.4f}"])
    print("\n" + format_table(
        ["datatype", "area mm2", "power mW", "inf/s/mm2", "uJ/inf", "accuracy"],
        rows, title="Figure 11: datatype DSE at Tn=16"))

    by_dt = {p.config.datatype: p for p in result.points}

    # 1. Cheaper datatypes are more area- and power-efficient.
    assert by_dt["int8"].area_um2 < by_dt["int16"].area_um2 < by_dt["fp32"].area_um2
    assert by_dt["int8"].area_efficiency > by_dt["fp32"].area_efficiency
    assert by_dt["int8"].energy_per_inference_uj < by_dt["fp32"].energy_per_inference_uj
    # 2. "Going beyond Int16 does not provide any appreciation in accuracy":
    #    int8 loses accuracy; int16 matches the float formats.
    assert by_dt["int8"].accuracy < by_dt["int16"].accuracy - 0.02
    for dt in ("fp16", "bf16", "tf32", "fp32"):
        assert abs(by_dt[dt].accuracy - by_dt["int16"].accuracy) < 0.02
    # 3. Hence int16 maximizes efficiency among accuracy-saturated formats —
    #    the paper's explanation of DianNao's datatype choice.
    saturated = [p for p in result.points
                 if p.accuracy >= by_dt["int16"].accuracy - 0.02]
    best = max(saturated, key=lambda p: p.area_efficiency)
    assert best.config.datatype == "int16"
