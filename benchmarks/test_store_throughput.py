"""Throughput of the shared artifact store's cross-process tier.

The store's reason to exist is that work one process does is warm for
every other process mounting the same backend.  Two measurements:

- **cross-process warm replay**: a *subprocess* sweeps a batch of
  accelerator configurations against an empty persistent backend; this
  process then mounts the same backend cold (no object or memory tier)
  and replays the sweep.  Replay must be >= 5x faster than computing
  the predictions, and bit-identical to direct ``sns.predict`` — a
  warm cache that drifts is worse than no cache.  Both backends
  (directory and SQLite) are measured.
- **1k-entry batched scan**: ``get_many`` over 1000 keys.  The SQLite
  backend answers in a few chunked ``IN`` selects where the directory
  backend pays one file open per key — the fast path for warm DSE
  scans.

Results land in ``BENCH_store.json`` at the repo root so the perf
trajectory is tracked in-tree.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import (SNS, CircuitformerConfig, PathSampler, TrainingConfig,
                        save_sns)
from repro.datagen import build_design_dataset
from repro.designs import GEMMUnit, SIMDALU, standard_designs
from repro.runtime import BatchPredictor, FrontendCache, PredictionCache
from repro.store import ArtifactStore, DirectoryBackend, SQLiteBackend, \
    open_backend

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_store.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")

BENCH_CF = CircuitformerConfig(embedding_size=64, dim_feedforward=128,
                               max_input_size=64)


def make_sweep_batch():
    """A 10-point accelerator sweep (GEMM tile shapes, SIMD lanes)."""
    batch = [GEMMUnit(rows=r, cols=c).elaborate()
             for r, c in ((2, 2), (2, 4), (4, 2), (4, 4), (4, 8), (8, 4))]
    batch += [SIMDALU(lanes=n).elaborate() for n in (2, 4, 8, 16)]
    return batch


@pytest.fixture(scope="module")
def bench_sns():
    from repro.synth import Synthesizer

    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs()
               if e.name in ("gpio16", "conv3x3")]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=100, seed=0),
              circuitformer_config=BENCH_CF,
              training_config=TrainingConfig(circuitformer_epochs=1,
                                             aggregator_epochs=20),
              num_aggregators=1)
    sns.fit(records, synthesizer=synth)
    return sns


WARMER = r"""
import sys
from repro.core import load_sns
from repro.runtime import BatchPredictor, FrontendCache, PredictionCache
from repro.store import ArtifactStore, open_backend

sys.path.insert(0, sys.argv[3])
from test_store_throughput import make_sweep_batch

sns = load_sns(sys.argv[1])
store = ArtifactStore(backend=open_backend(sys.argv[2]))
engine = BatchPredictor(sns, cache=PredictionCache(store=store),
                        frontend_cache=FrontendCache(store=store))
engine.predict_batch(make_sweep_batch())
store.close()
"""


def _engine(sns, backend) -> BatchPredictor:
    store = ArtifactStore(backend=backend)
    return BatchPredictor(sns, cache=PredictionCache(store=store),
                          frontend_cache=FrontendCache(store=store))


def _measure_backend(sns, model_path, spec) -> dict:
    batch = make_sweep_batch()

    # Direct computation: the oracle the warm replay must match, run
    # first so process-level one-off costs (BLAS pools, CRC tables) are
    # paid before anything is timed.
    direct = [sns.predict(g) for g in batch]

    # Cold: empty backend, every prediction computed in-process.
    t0 = time.perf_counter()
    cold_engine = _engine(sns, open_backend(spec))
    cold = cold_engine.predict_batch(batch)
    cold_seconds = time.perf_counter() - t0
    cold_engine.cache.store.clear(memory_only=False)

    # A different process sweeps the same batch into the backend...
    env = {**os.environ, "PYTHONPATH": SRC}
    subprocess.run(
        [sys.executable, "-c", WARMER, str(model_path), str(spec),
         str(Path(__file__).resolve().parent)],
        env=env, check=True, capture_output=True, timeout=600)

    # ...and this process replays it through the persistent tier only
    # (a fresh store: no live objects, no memory payloads).
    t0 = time.perf_counter()
    warm_engine = _engine(sns, open_backend(spec))
    warm = warm_engine.predict_batch(batch)
    warm_seconds = time.perf_counter() - t0

    stats = warm_engine.cache.stats
    assert stats.disk_hits == len(batch), vars(stats)
    bit_identical = all(
        w.timing_ps == d.timing_ps and w.area_um2 == d.area_um2
        and w.power_mw == d.power_mw for w, d in zip(warm, direct))
    assert all(c.timing_ps == d.timing_ps for c, d in zip(cold, direct))
    return {
        "designs": len(batch),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "warm_designs_per_second": len(batch) / warm_seconds,
        "bit_identical": bit_identical,
    }


def test_store_cross_process_replay(bench_sns, tmp_path):
    model_path = tmp_path / "model.npz"
    save_sns(bench_sns, model_path)

    results = {}
    for label, spec in (("directory", tmp_path / "store-dir"),
                        ("sqlite", tmp_path / "store.sqlite")):
        results[label] = _measure_backend(bench_sns, model_path, spec)
        print(f"\n{label}: cold {results[label]['cold_seconds']:.3f}s, "
              f"warm replay {results[label]['warm_seconds']:.3f}s "
              f"({results[label]['warm_speedup']:.1f}x, "
              f"bit_identical={results[label]['bit_identical']})")

    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["cross_process_replay"] = results
    BENCH_JSON.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    for label, r in results.items():
        # Warm replay must be bit-identical to direct computation and
        # >= 5x faster on both backends.
        assert r["bit_identical"], label
        assert r["warm_speedup"] >= 5.0, (label, r)


def test_store_batched_scan(tmp_path):
    n = 1000
    items = {f"{i:064x}": {"timing_ps": float(i), "pad": "x" * 200}
             for i in range(n)}
    sqlite = SQLiteBackend(tmp_path / "scan.sqlite")
    directory = DirectoryBackend(tmp_path / "scan-dir")
    sqlite.put_many("prediction", items)
    directory.put_many("prediction", items)
    keys = list(items)

    t0 = time.perf_counter()
    found = sqlite.get_many("prediction", keys)
    sqlite_seconds = time.perf_counter() - t0
    assert found == items

    t0 = time.perf_counter()
    found = {k: v for k in keys
             if (v := directory.get("prediction", k)) is not None}
    directory_seconds = time.perf_counter() - t0
    assert found == items

    result = {
        "entries": n,
        "sqlite_batched_seconds": sqlite_seconds,
        "directory_per_key_seconds": directory_seconds,
        "sqlite_advantage": directory_seconds / sqlite_seconds,
    }
    print(f"\n1k-entry warm scan: sqlite get_many {sqlite_seconds * 1e3:.1f}ms "
          f"vs directory per-key {directory_seconds * 1e3:.1f}ms "
          f"({result['sqlite_advantage']:.1f}x)")

    doc = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    doc["batched_scan"] = result
    BENCH_JSON.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")

    # One round trip must beat a thousand file opens.
    assert result["sqlite_advantage"] >= 1.5, result
