"""Figure 6 — predicted vs actual scatter for area, power, and timing."""

import numpy as np

from repro.experiments import AccuracyReport, ascii_scatter, evaluate_split

from conftest import run_once


def test_fig6_prediction_scatter(benchmark, cv_parts, sns_on_a, sns_on_b):
    part_a, part_b = cv_parts

    def evaluate():
        rows = evaluate_split(sns_on_b, part_a) + evaluate_split(sns_on_a, part_b)
        return AccuracyReport.from_rows(rows)

    report = run_once(benchmark, evaluate)

    names = ("timing (ps)", "area (um2)", "power (mW)")
    for i, name in enumerate(names):
        actual = [r.actual[i] for r in report.rows]
        predicted = [r.predicted[i] for r in report.rows]
        print("\n" + ascii_scatter(
            actual, predicted,
            title=f"Figure 6 ({name}): x=synthesizer (log), y=SNS (log)"))
        print(f"  RRSE {report.rrse[list(report.rrse)[i]]:.3f}  "
              f"MAEP {report.maep[list(report.maep)[i]]:.1f}%")

    # Shape checks: predictions track actuals in rank order (the scatter
    # hugs the diagonal) across the multi-order-of-magnitude area range.
    actual_area = np.array([r.actual[1] for r in report.rows])
    pred_area = np.array([r.predicted[1] for r in report.rows])
    rank_corr = np.corrcoef(np.argsort(np.argsort(actual_area)),
                            np.argsort(np.argsort(pred_area)))[0, 1]
    print(f"\narea rank correlation: {rank_corr:.3f}")
    assert rank_corr > 0.7
    assert report.rrse["area"] < 1.0  # beats the mean predictor
