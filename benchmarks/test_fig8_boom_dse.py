"""Figure 8 + Tables 10/11 — the BOOM design-space exploration."""

import os

from repro.boom import TABLE10
from repro.experiments import format_table, run_boom_study, strided_subspace

from conftest import run_once


def test_table10_parameter_space(benchmark):
    space = run_once(benchmark, lambda: strided_subspace(1))
    assert len(space) == 2592

    rows = [[name, ", ".join(map(str, values)), len(values)]
            for name, values in TABLE10.items()]
    total = 1
    for values in TABLE10.values():
        total *= len(values)
    rows.append(["# of combinations", "", total])
    print("\n" + format_table(["parameter", "possible values", "count"], rows,
                              title="Table 10: BOOM DSE hyperparameters"))
    assert total == 2592


def test_fig8_boom_dse(benchmark, sns_on_a):
    # SNS_BOOM_STRIDE=1 runs the paper's full 2592-point sweep.
    stride = int(os.environ.get("SNS_BOOM_STRIDE", "8"))
    configs = strided_subspace(stride)

    report = run_once(benchmark, lambda: run_boom_study(
        sns_on_a, configs, verify_samples=8, synth_effort="medium"))
    result = report.result

    print(f"\nFigure 8: BOOM DSE over {report.configs_evaluated} configs "
          f"(of 2592; stride {stride}) in {result.runtime_s:.1f}s "
          f"({result.runtime_s / report.configs_evaluated * 1e3:.0f} ms/design; "
          "paper: 2.1h for 2592 vs ~45 days with the synthesizer)")
    print("spot-check MAEP vs synthesizer "
          "(paper: area 12.58% / power 29.61% / timing 19.78%): "
          + ", ".join(f"{k} {v:.1f}%" for k, v in report.verify_maep.items()))

    rows = []
    for label, point in (("HighPerf", result.high_perf),
                         ("PowerEff", result.power_eff),
                         ("AreaEff", result.area_eff)):
        c = point.config
        rows.append([label, c.branch_predictor, c.core_width, c.memory_ports,
                     c.fetch_width, c.rob_size, c.int_regs, c.issue_slots,
                     c.dcache_ways, f"{point.score:.3f}"])
    print(format_table(
        ["pick", "bpred", "width", "mem", "fetch", "rob", "iregs", "slots",
         "ways", "norm score"], rows, title="Table 11: selected configurations"))

    pareto = set(result.pareto_power) | set(result.pareto_area)
    print(f"pareto designs: {len(pareto)}; memory ports on the frontier: "
          f"{sorted({p.config.memory_ports for p in pareto})}")

    # Paper's observations as shape assertions:
    # 1. The fastest design is a wide core.
    assert result.high_perf.config.core_width >= 3
    # 2. Efficiency picks keep a large fraction of peak performance
    #    despite far smaller resources (the paper reports <10% slower;
    #    our analytic CoreMark model penalizes narrow cores harder, so
    #    the asserted band is wider).
    assert result.power_eff.score > 0.4
    assert result.area_eff.score > 0.4
    # 3. Pareto designs overwhelmingly use a single memory port.
    assert report.pareto_single_memory_port
