"""Ablation — synthetic path generation (Section 4.2).

The paper augments 684 sampled paths with ~1000 Markov + ~3000 SeqGAN
paths because the Circuitformer needs more data than the designs yield.
This bench trains the (fast-config) Circuitformer with and without
augmentation and compares validation losses on the same held-out paths.
"""

import numpy as np

from repro.core import Circuitformer, CircuitformerConfig, TrainingConfig, encode_batch
from repro.core.training import train_circuitformer
from repro.datagen import (
    AugmentationConfig,
    SeqGANConfig,
    sample_path_dataset,
)
from repro.datagen.augment import augment_path_dataset
from repro.experiments import format_table
from repro.synth import Synthesizer
import repro.nn as nn

from conftest import run_once

SMALL_CF = CircuitformerConfig(embedding_size=32, dim_feedforward=64,
                               max_input_size=64)


def _val_loss(model, records):
    labels = np.stack([r.labels for r in records])
    targets = model.scaler.transform(labels)
    max_len = min(model.config.max_input_size - 1,
                  max(len(r.tokens) for r in records))
    ids, mask = encode_batch([r.tokens for r in records], model.vocab, max_len)
    model.eval()
    with nn.no_grad():
        pred = model.forward(ids, mask)
    return float(nn.mse_loss(pred, targets).item())


def test_ablation_synthetic_data(benchmark, design_records, settings):
    synth = Synthesizer(effort="low")
    sampler = settings.make_sampler()
    train_designs = design_records[: len(design_records) // 2]
    holdout_designs = design_records[len(design_records) // 2:]

    def run():
        sampled = sample_path_dataset(train_designs, sampler, synth)
        holdout = sample_path_dataset(holdout_designs, sampler, synth)
        holdout = [r for r in holdout if r.tokens not in {s.tokens for s in sampled}]
        augmented = augment_path_dataset(
            sampled,
            AugmentationConfig(markov_paths=150, seqgan_paths=150, max_len=32,
                               seqgan=SeqGANConfig(max_len=32, pretrain_epochs=15,
                                                   adversarial_rounds=4)),
            synth)
        results = {}
        for name, dataset in (("sampled only", sampled),
                              ("with Markov+SeqGAN", augmented)):
            model = Circuitformer(SMALL_CF, seed=0)
            train_circuitformer(model, dataset,
                                TrainingConfig(circuitformer_epochs=12))
            results[name] = (_val_loss(model, holdout), len(dataset))
        return results, len(holdout)

    results, n_holdout = run_once(benchmark, run)

    print("\n" + format_table(
        ["training set", "paths", "held-out design loss"],
        [[name, n, f"{loss:.4f}"] for name, (loss, n) in results.items()],
        title=f"Ablation: synthetic path data ({n_holdout} held-out paths)"))

    plain = results["sampled only"][0]
    augmented = results["with Markov+SeqGAN"][0]
    # Augmentation must not hurt generalization to unseen designs' paths
    # (the paper: it makes the model "more robust and accurate").
    assert augmented <= plain * 1.25
    assert results["with Markov+SeqGAN"][1] > results["sampled only"][1]
