"""Table 2 — Circuitformer vs canonical Transformer hyperparameters."""

from repro.core import Circuitformer, CircuitformerConfig
from repro.experiments import format_table

from conftest import run_once

# The BERT-base column of Table 2, for comparison.
TRANSFORMER = {"vocab": 30522, "layers": 12, "heads": 12, "embedding": 768,
               "max_input": 512, "params": 109_000_000}


def test_table2_circuitformer_hyperparameters(benchmark):
    model = run_once(benchmark, lambda: Circuitformer(CircuitformerConfig()))
    cfg = model.config
    params = model.num_parameters()

    print("\n" + format_table(
        ["hyperparameter", "Circuitformer (ours)", "Circuitformer (paper)",
         "Transformer"],
        [["Vocabulary Set Size", cfg.vocab_size, 79, TRANSFORMER["vocab"]],
         ["Hidden Layers", cfg.hidden_layers, 2, TRANSFORMER["layers"]],
         ["Attention Heads", cfg.attention_heads, 2, TRANSFORMER["heads"]],
         ["Embedding Vector Size", cfg.embedding_size, 128, TRANSFORMER["embedding"]],
         ["Maximum Input Size", cfg.max_input_size, 512, TRANSFORMER["max_input"]],
         ["Total #Parameters", params, "1.4 M", "109 M"]],
        title="Table 2: Circuitformer and Transformer hyperparameters"))

    # Architectural hyperparameters match the paper exactly.
    assert (cfg.vocab_size, cfg.hidden_layers, cfg.attention_heads,
            cfg.embedding_size, cfg.max_input_size) == (79, 2, 2, 128, 512)
    # Same two-orders-of-magnitude reduction vs BERT-base the paper reports
    # (exact parameter count depends on head/FFN bookkeeping).
    assert params < TRANSFORMER["params"] / 50
    assert params > 100_000
