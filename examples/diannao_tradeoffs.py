#!/usr/bin/env python3
"""DianNao trade-off study (Section 5.7: Table 12, Figures 10 and 11).

Reproduces the three case-study questions with the reference synthesizer
as the evaluation engine (swap in a trained SNS for the paper's flow):

1. Can the published DianNao point be predicted? (Table 12 scaling)
2. How does Tn shape area/power efficiency? (Figure 10 — optimum at 16)
3. How do datatypes trade hardware cost against model accuracy?
   (Figure 11 — accuracy saturates at int16)

Run:  python examples/diannao_tradeoffs.py
"""

from repro.experiments import (
    DIANNAO_65NM,
    format_series,
    format_table,
    run_datatype_sweep,
    run_tn_sweep,
)
from repro.synth import Synthesizer, scale_result


def main() -> None:
    synth = Synthesizer(effort="medium")

    print("== Table 12: the published DianNao point ==")
    scaled = scale_result(DIANNAO_65NM["timing_ps"], DIANNAO_65NM["area_um2"],
                          DIANNAO_65NM["power_mw"], from_nm=65, to_nm=15)
    print(format_table(
        ["row", "power mW", "area mm2", "timing ns"],
        [["Original synthesis (65nm)", DIANNAO_65NM["power_mw"],
          DIANNAO_65NM["area_um2"] * 1e-6, DIANNAO_65NM["timing_ps"] * 1e-3],
         ["Scaled (15nm, Stillmaker-Baas)", scaled.power_mw,
          scaled.area_um2 * 1e-6, scaled.timing_ps * 1e-3]]))

    print("\n== Figure 10: Tn design-space exploration ==")
    tn_result = run_tn_sweep(synth)
    points = sorted(tn_result.points, key=lambda p: p.config.tn)
    tns = [p.config.tn for p in points]
    print(format_series("area efficiency (inf/s per mm2, higher better)",
                        tns, [p.area_efficiency for p in points], "Tn"))
    print(format_series("energy per inference (uJ, lower better)",
                        tns, [p.energy_per_inference_uj for p in points], "Tn"))
    best = tn_result.best_by_area_efficiency().config.tn
    print(f"-> optimum Tn = {best} "
          "(the paper: Tn=16 explains DianNao's published choice)")

    print("\n== Figure 11: datatype vs efficiency vs accuracy ==")
    dt_result = run_datatype_sweep(synth)
    rows = []
    for p in dt_result.points:
        rows.append([p.config.datatype, f"{p.area_um2 * 1e-6:.4f}",
                     f"{p.power_mw:.1f}", f"{p.area_efficiency:.0f}",
                     f"{p.energy_per_inference_uj:.1f}", f"{p.accuracy:.3f}"])
    print(format_table(
        ["datatype", "area mm2", "power mW", "inf/s/mm2", "uJ/inf", "accuracy"],
        rows))
    accs = {p.config.datatype: p.accuracy for p in dt_result.points}
    print(f"-> int8 loses {100 * (accs['int16'] - accs['int8']):.1f}% accuracy; "
          "beyond int16 accuracy is flat while cost keeps growing "
          "(the paper: int16 is the sweet spot)")


if __name__ == "__main__":
    main()
