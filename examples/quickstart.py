#!/usr/bin/env python3
"""Quickstart: train SNS on the design dataset and predict a new design.

Walks the full paper pipeline end to end on a CPU-friendly budget:

1. build the Hardware Design Dataset (elaborate + synthesize designs),
2. train SNS (path sampling -> Circuitformer -> Aggregation MLP),
3. predict area/power/timing of held-out designs in milliseconds,
4. compare against the reference synthesizer's ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import rrse
from repro.datagen import train_test_split_by_family
from repro.experiments import FAST, build_dataset, fit_sns, format_table

def main() -> None:
    print("== SNS quickstart ==")
    print("Building the hardware design dataset (Table 4)...")
    records = build_dataset(FAST)
    train, test = train_test_split_by_family(records, 0.5, seed=0)
    print(f"  {len(records)} designs synthesized; "
          f"{len(train)} train / {len(test)} test (family-aware split)")

    print("Training SNS (Figure 4 flow)...")
    sns = fit_sns(train, FAST)
    print(f"  Circuitformer final val loss: "
          f"{sns.circuitformer_history[-1].val_loss:.4f}")

    print("Predicting held-out designs (Figure 1 flow)...")
    rows = []
    preds, actuals = [], []
    for record in test:
        p = sns.predict(record.graph)
        rows.append([record.name, f"{p.timing_ps:.0f}/{record.timing_ps:.0f}",
                     f"{p.area_um2:.0f}/{record.area_um2:.0f}",
                     f"{p.power_mw:.2f}/{record.power_mw:.2f}",
                     f"{p.runtime_s * 1e3:.1f}ms"])
        preds.append([p.timing_ps, p.area_um2, p.power_mw])
        actuals.append(record.labels)
    print(format_table(
        ["design", "timing ps (pred/act)", "area um2 (pred/act)",
         "power mW (pred/act)", "SNS time"], rows))

    preds = np.array(preds)
    actuals = np.array(actuals)
    for i, name in enumerate(("timing", "area", "power")):
        print(f"  {name:>6s} RRSE: {rrse(preds[:, i], actuals[:, i]):.3f} "
              "(1.0 = mean predictor; lower is better)")

    # The path-level view: where is the predicted critical path?
    sample = test[0]
    p = sns.predict(sample.graph)
    print(f"\nPredicted critical path of {sample.name} "
          f"({p.num_paths} paths sampled):")
    print(" -> ".join(p.critical_path.tokens))


if __name__ == "__main__":
    main()
