#!/usr/bin/env python3
"""Train a full-quality SNS on all 41 dataset designs and save it.

Produces ``models/sns_full.npz`` (see also ``python -m repro train``).
The saved model loads in milliseconds and predicts new designs without
retraining:

    from repro.core import load_sns
    sns = load_sns("models/sns_full.npz")
    prediction = sns.predict(my_graph)

Run:  python examples/train_and_save.py [output.npz]
"""

import sys
import time
from pathlib import Path

from repro.core import save_sns
from repro.experiments import FULL, build_dataset, fit_sns


def main() -> None:
    output = Path(sys.argv[1] if len(sys.argv) > 1 else "models/sns_full.npz")
    output.parent.mkdir(parents=True, exist_ok=True)

    print("Synthesizing the 41-design dataset...")
    records = build_dataset(FULL)
    print(f"Training SNS on all {len(records)} designs (full preset; "
          "several minutes on CPU)...")
    start = time.perf_counter()
    sns = fit_sns(records, FULL)
    print(f"trained in {time.perf_counter() - start:.0f}s; "
          f"Circuitformer val loss "
          f"{sns.circuitformer_history[-1].val_loss:.4f}")

    save_sns(sns, output)
    print(f"saved {output} ({output.stat().st_size / 1e6:.1f} MB)")


if __name__ == "__main__":
    main()
