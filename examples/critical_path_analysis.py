#!/usr/bin/env python3
"""Critical-path localization (Section 2.2) and EDA-style reporting.

SNS keeps a record of where every sampled path lives, so it can point at
the predicted critical path — something whole-graph GNN predictors
cannot do.  This example trains a small SNS, asks it for the critical
path of a held-out design, and checks the answer against the reference
synthesizer's STA report.

Run:  python examples/critical_path_analysis.py
"""

from repro.datagen import train_test_split_by_family
from repro.experiments import FAST, build_dataset, fit_sns
from repro.synth import analyze


def main() -> None:
    print("Training SNS (fast preset)...")
    records = build_dataset(FAST)
    train, test = train_test_split_by_family(records, 0.5, seed=0)
    sns = fit_sns(train, FAST)

    target = max(test, key=lambda r: r.graph.num_nodes)
    print(f"\nAnalyzing held-out design: {target.name} "
          f"({target.graph.num_nodes} vertices)")

    # SNS's located critical path (milliseconds).
    pred = sns.predict(target.graph)
    print(f"\nSNS predicts {pred.timing_ps:.0f} ps "
          f"(actual {target.timing_ps:.0f} ps) in {pred.runtime_s * 1e3:.0f} ms")
    lo, hi = pred.confidence_interval("timing")
    print(f"ensemble confidence band: {lo:.0f} .. {hi:.0f} ps")
    print("SNS-located critical path:")
    print("  " + " -> ".join(pred.critical_path.tokens))

    # The reference STA's view (the slow, exact answer).
    report = analyze(target.graph, num_paths=1)
    print(f"\nReference STA clock period: {report.clock_period_ps:.0f} ps")
    print("reference critical path:")
    print(report.critical_paths[0].format())

    located = set(pred.critical_path.node_ids)
    # The report's chain uses mapped-netlist ids == GraphIR node ids.
    truth_tokens = [f"{t}{w}" for t, w, _ in report.critical_paths[0].cells]
    overlap = len(set(pred.critical_path.tokens) & set(truth_tokens))
    print(f"\ntoken overlap with the reference path: {overlap} / "
          f"{len(set(truth_tokens))} cell types")


if __name__ == "__main__":
    main()
