#!/usr/bin/env python3
"""BOOM design-space exploration (Section 5.6 / Figure 8 / Table 11).

Trains SNS, sweeps a slice of the 2592-configuration BOOM space, scores
each core with the CoreMark model at its predicted frequency, and picks
the HighPerf / PowerEff / AreaEff Pareto designs.  Pass ``--stride 1``
for the full 2592-point sweep (minutes), larger strides for a quick look.

Run:  python examples/boom_dse.py [--stride 36]
"""

import argparse

from repro.datagen import train_test_split_by_family
from repro.experiments import (
    FAST,
    build_dataset,
    fit_sns,
    format_table,
    run_boom_study,
    strided_subspace,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stride", type=int, default=36,
                        help="evaluate every Nth of the 2592 configs")
    args = parser.parse_args()

    print("Training SNS on the hardware design dataset...")
    records = build_dataset(FAST)
    train, _ = train_test_split_by_family(records, 0.5, seed=0)
    sns = fit_sns(train, FAST)

    configs = strided_subspace(args.stride)
    print(f"Exploring {len(configs)} of 2592 BOOM configurations...")
    report = run_boom_study(sns, configs, verify_samples=5, synth_effort="low")
    result = report.result

    print(f"\nDSE wall-clock: {result.runtime_s:.1f}s "
          f"({result.runtime_s / len(configs) * 1e3:.0f} ms per design)")
    print(f"Spot-check MAEP vs synthesizer "
          f"(paper: 12.6% area / 29.6% power / 19.8% timing): "
          + ", ".join(f"{k} {v:.1f}%" for k, v in report.verify_maep.items()))

    rows = []
    for label, point in (("HighPerf", result.high_perf),
                         ("PowerEff", result.power_eff),
                         ("AreaEff", result.area_eff)):
        c = point.config
        rows.append([label, c.branch_predictor, c.core_width, c.memory_ports,
                     c.fetch_width, c.rob_size, c.int_regs, c.issue_slots,
                     c.dcache_ways, f"{point.score:.3f}",
                     f"{point.power_mw:.1f}", f"{point.area_um2 * 1e-6:.3f}"])
    print("\n" + format_table(
        ["pick", "bpred", "width", "memports", "fetch", "rob", "iregs",
         "slots", "ways", "score", "power mW", "area mm2"],
        rows, title="Table 11-style Pareto picks"))

    front = result.pareto_power
    print(f"\nPareto frontier (power): {len(front)} designs; "
          f"memory ports used: {sorted({p.config.memory_ports for p in front})}")


if __name__ == "__main__":
    main()
