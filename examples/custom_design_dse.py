#!/usr/bin/env python3
"""Design-space exploration of a *user* design (Section 5.5 usage model).

Shows how to take your own parameterizable hardware — here, a DMA engine
and a cache controller from the component library — and run the paper's
DSE recipe with the generic explorer: enumerate a parameter grid,
evaluate each point, and read the Pareto frontier.

This example uses the reference synthesizer as the engine for ground
truth; swap in a trained SNS (``repro.experiments.fit_sns``) for the
two-to-three-orders-of-magnitude faster flow the paper advocates.

Run:  python examples/custom_design_dse.py
"""

from repro.designs import CacheController, DMAEngine
from repro.dse import DesignSpaceExplorer, ParameterGrid
from repro.experiments import format_table
from repro.synth import Synthesizer


def main() -> None:
    synth = Synthesizer(effort="medium")

    print("== DMA engine: channels x data width ==")
    grid = ParameterGrid({"channels": (1, 2, 4, 8), "data_bits": (32, 64)})
    print(grid.describe())
    explorer = DesignSpaceExplorer(
        DMAEngine, synth,
        # score: aggregate DMA bandwidth ~ channels x bus width x frequency
        score=lambda p, t, a, pw: p["channels"] * p["data_bits"] * 1000.0 / t)
    result = explorer.explore(grid)
    rows = [[p.params["channels"], p.params["data_bits"],
             f"{p.timing_ps:.0f}", f"{p.area_um2:.0f}", f"{p.power_mw:.2f}",
             f"{p.score:.0f}"] for p in result.points]
    print(format_table(
        ["channels", "data bits", "timing ps", "area um2", "power mW",
         "bandwidth score"], rows))
    front = result.pareto(cost="area_um2")
    print(f"Pareto-optimal (area vs bandwidth): "
          + ", ".join(f"ch{p.params['channels']}/w{p.params['data_bits']}"
                      for p in front))

    print("\n== Cache controller: ways x sets (hit-latency constrained) ==")
    grid = ParameterGrid({"ways": (2, 4, 8), "sets": (4, 8, 16)})
    explorer = DesignSpaceExplorer(
        CacheController, synth,
        # score: capacity per nanosecond of hit latency
        score=lambda p, t, a, pw: p["ways"] * p["sets"] / (t * 1e-3))
    result = explorer.explore(
        grid, constraint=lambda p: p["ways"] * p["sets"] <= 64)
    best = result.best("score_per_area")
    print(f"evaluated {len(result.points)} configurations "
          f"in {result.runtime_s:.1f}s")
    print(f"best capacity-per-area: ways={best.params['ways']} "
          f"sets={best.params['sets']} "
          f"({best.area_um2:.0f} um2 at {best.timing_ps:.0f} ps)")


if __name__ == "__main__":
    main()
