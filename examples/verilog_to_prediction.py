#!/usr/bin/env python3
"""From Verilog source to synthesis prediction — the paper's usage model.

SNS accepts plain HDL text (Section 5.5).  This example parses a Verilog
design with the bundled front-end, shows its GraphIR, samples complete
circuit paths (Algorithm 1), and compares the path-based view with full
synthesis — including the paper's own order-sensitivity example, where
``a*b + c`` fuses into a MAC but ``(a+b)*c`` cannot.

Run:  python examples/verilog_to_prediction.py
"""

from repro.core import PathSampler
from repro.experiments import format_table
from repro.graphir import token_counts
from repro.synth import Synthesizer
from repro.verilog import elaborate_source

FIR_FILTER = """
// A 4-tap FIR filter with coefficient registers.
module fir #(parameter W = 16) (
    input clk,
    input [W-1:0] sample,
    input [W-1:0] c0, input [W-1:0] c1, input [W-1:0] c2, input [W-1:0] c3,
    output [W-1:0] y
);
  reg [W-1:0] d0;
  reg [W-1:0] d1;
  reg [W-1:0] d2;
  reg [W-1:0] acc;
  always @(posedge clk) d0 <= sample;
  always @(posedge clk) d1 <= d0;
  always @(posedge clk) d2 <= d1;
  wire [W-1:0] sum;
  assign sum = sample * c0 + d0 * c1 + d1 * c2 + d2 * c3;
  always @(posedge clk) acc <= sum;
  assign y = acc;
endmodule
"""

MAC_FUSED = """
module fused(input clk, input [7:0] a, input [7:0] b, input [15:0] c,
             output [15:0] y);
  reg [15:0] r;
  always @(posedge clk) r <= a * b + c;   // mul feeds add: MAC-fusable
  assign y = r;
endmodule
"""

MAC_UNFUSED = """
module unfused(input clk, input [7:0] a, input [7:0] b, input [15:0] c,
               output [15:0] y);
  reg [15:0] r;
  always @(posedge clk) r <= (a + b) * c; // add feeds mul: no fusion
  assign y = r;
endmodule
"""


def main() -> None:
    print("== Verilog front-end -> GraphIR -> paths -> synthesis ==\n")
    graph = elaborate_source(FIR_FILTER)
    print(f"FIR filter GraphIR: {graph.num_nodes} vertices, "
          f"{graph.num_edges} edges")
    counts = token_counts(graph)
    print("  token histogram:",
          ", ".join(f"{t}x{n}" for t, n in sorted(counts.items())))

    paths = PathSampler(k=1, max_paths=50).sample(graph)
    print(f"\nComplete circuit paths (k=1, exhaustive): {len(paths)}")
    for p in sorted(paths, key=len, reverse=True)[:5]:
        print("  " + " -> ".join(p.tokens))

    synth = Synthesizer(effort="medium")
    result = synth.synthesize(graph)
    print(f"\nReference synthesis: {result.timing_ps:.0f} ps, "
          f"{result.area_um2:.0f} um2, {result.power_mw:.2f} mW "
          f"({result.gate_count:.0f} NAND2-equivalent gates)")

    print("\n== Order sensitivity (Section 3.3) ==")
    rows = []
    for name, src in (("a*b + c (fusable)", MAC_FUSED),
                      ("(a+b) * c (not fusable)", MAC_UNFUSED)):
        r = synth.synthesize(elaborate_source(src))
        rows.append([name, f"{r.timing_ps:.1f}", f"{r.area_um2:.1f}",
                     f"{r.power_mw:.3f}"])
    print(format_table(["expression", "timing ps", "area um2", "power mW"], rows))
    print("\nA bag-of-counts model sees identical vertices for both --- "
          "the Circuitformer's order awareness is what separates them.")


if __name__ == "__main__":
    main()
