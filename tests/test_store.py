"""Unit tests for the unified content-addressed artifact store.

Covers the pieces ``repro.store`` promises independently of the cache
adapters built on it: backend parity (directory and SQLite behind one
interface), write-once semantics, corruption tolerance with put-side
healing, the three-tier lookup path with per-kind/per-tier stats, lazy
payload encoding, single-flight computation dedup, legacy flat-layout
compatibility with PR 1-9 cache directories, gc sweeps, and the
trained-model registry round trip.
"""

import json
import threading

import pytest

from repro.store import (ArtifactStore, DirectoryBackend, ModelStore,
                         SQLiteBackend, gc_backend, keys, open_backend)

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def both_backends(tmp_path):
    return [DirectoryBackend(tmp_path / "dir"),
            SQLiteBackend(tmp_path / "store.sqlite")]


# ---------------------------------------------------------------------- #
class TestBackendParity:
    """Both persistent backends honour the same contract."""

    def test_put_get_roundtrip(self, tmp_path):
        for backend in both_backends(tmp_path):
            payload = {"x": 1, "nested": {"y": [1, 2, 3]}}
            assert backend.get("synth", KEY_A) is None
            backend.put("synth", KEY_A, payload)
            assert backend.get("synth", KEY_A) == payload
            assert backend.contains("synth", KEY_A)
            assert not backend.contains("synth", KEY_B)

    def test_kinds_are_disjoint_namespaces(self, tmp_path):
        for backend in both_backends(tmp_path):
            backend.put("graph", KEY_A, {"kind": "graph"})
            backend.put("paths", KEY_A, {"kind": "paths"})
            assert backend.get("graph", KEY_A) == {"kind": "graph"}
            assert backend.get("paths", KEY_A) == {"kind": "paths"}
            assert backend.get("synth", KEY_A) is None

    def test_get_many_put_many(self, tmp_path):
        for backend in both_backends(tmp_path):
            items = {f"{i:064x}": {"i": i} for i in range(950)}
            backend.put_many("prediction", items)
            asked = list(items) + [KEY_A, KEY_B]
            found = backend.get_many("prediction", asked)
            assert found == items  # misses silently absent

    def test_entries_and_delete(self, tmp_path):
        for backend in both_backends(tmp_path):
            backend.put("synth", KEY_A, {"v": 1})
            backend.put("prediction", KEY_B, {"v": 2})
            rows = {(e.kind, e.key): e for e in backend.entries()}
            assert set(rows) == {("synth", KEY_A), ("prediction", KEY_B)}
            assert all(e.size > 0 and e.created_at > 0
                       for e in rows.values())
            backend.delete("synth", KEY_A)
            assert backend.get("synth", KEY_A) is None
            assert backend.get("prediction", KEY_B) == {"v": 2}

    def test_clear(self, tmp_path):
        for backend in both_backends(tmp_path):
            backend.put("synth", KEY_A, {"v": 1})
            backend.put("graph", KEY_B, {"v": 2})
            backend.clear()
            assert list(backend.entries()) == []
            assert backend.get("synth", KEY_A) is None


class TestWriteOnce:
    def test_sqlite_first_writer_wins(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "s.sqlite")
        backend.put("synth", KEY_A, {"v": "first"})
        backend.put("synth", KEY_A, {"v": "second"})
        assert backend.get("synth", KEY_A) == {"v": "first"}

    def test_sqlite_replace_overrides(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "s.sqlite")
        backend.put("model-alias", KEY_A, {"model_fp": "one"})
        backend.put("model-alias", KEY_A, {"model_fp": "two"}, replace=True)
        assert backend.get("model-alias", KEY_A) == {"model_fp": "two"}

    def test_directory_last_writer_wins_heals(self, tmp_path):
        # Content-addressed entries make overwrite safe, and it is what
        # lets a later put repair a corrupt file.
        backend = DirectoryBackend(tmp_path / "d")
        backend.put("synth", KEY_A, {"v": "first"})
        backend.put("synth", KEY_A, {"v": "second"})
        assert backend.get("synth", KEY_A) == {"v": "second"}


class TestCorruptionTolerance:
    def test_directory_garbage_reads_as_miss(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "d")
        backend.put("synth", KEY_A, {"v": 1})
        path = tmp_path / "d" / "synth" / KEY_A[:2] / f"{KEY_A}.json"
        path.write_text('{"torn": ')
        assert backend.get("synth", KEY_A) is None
        backend.put("synth", KEY_A, {"v": 1})  # heal
        assert backend.get("synth", KEY_A) == {"v": 1}

    def test_directory_non_dict_reads_as_miss(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "d")
        backend.put("synth", KEY_A, {"v": 1})
        path = tmp_path / "d" / "synth" / KEY_A[:2] / f"{KEY_A}.json"
        path.write_text("[1, 2, 3]")
        assert backend.get("synth", KEY_A) is None

    def test_sqlite_corrupt_row_deleted_then_healed(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "s.sqlite")
        conn = backend._conn()
        conn.execute(
            "INSERT INTO artifacts (kind, key, value, size, created_at) "
            "VALUES (?, ?, ?, ?, ?)",
            ("synth", KEY_A, b"\x00\xffnot json", 10, 0.0))
        assert backend.get("synth", KEY_A) is None
        # The corrupt row was deleted, so write-once INSERT OR IGNORE
        # accepts the healing put.
        backend.put("synth", KEY_A, {"v": "healed"})
        assert backend.get("synth", KEY_A) == {"v": "healed"}

    def test_sqlite_garbage_file_reads_as_miss(self, tmp_path):
        path = tmp_path / "broken.sqlite"
        path.write_bytes(b"definitely not a database" * 100)
        backend = SQLiteBackend(path)
        assert backend.get("synth", KEY_A) is None
        assert backend.get_many("synth", [KEY_A, KEY_B]) == {}
        assert list(backend.entries()) == []


class TestLegacyFlatLayout:
    def test_reads_pr9_style_directory(self, tmp_path):
        # Hand-write the exact layout the PR 1-9 caches produced:
        # root/<key[:2]>/<key>.json with no kind level.
        (tmp_path / KEY_A[:2]).mkdir()
        (tmp_path / KEY_A[:2] / f"{KEY_A}.json").write_text(
            json.dumps({"timing_ps": 123.0}))
        backend = DirectoryBackend(tmp_path, flat=True)
        assert backend.get("prediction", KEY_A) == {"timing_ps": 123.0}
        [entry] = backend.entries()
        assert (entry.kind, entry.key) == ("", KEY_A)

    def test_writes_pr9_style_directory(self, tmp_path):
        backend = DirectoryBackend(tmp_path, flat=True)
        backend.put("prediction", KEY_A, {"v": 1})
        assert json.loads(
            (tmp_path / KEY_A[:2] / f"{KEY_A}.json").read_text()) == {"v": 1}


class TestOpenBackend:
    def test_suffix_dispatch(self, tmp_path):
        assert isinstance(open_backend(tmp_path / "x.sqlite"), SQLiteBackend)
        assert isinstance(open_backend(tmp_path / "x.db"), SQLiteBackend)
        assert isinstance(open_backend(tmp_path / "plain"), DirectoryBackend)

    def test_existing_file_is_sqlite(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "noext")
        backend.put("synth", KEY_A, {"v": 1})
        backend.close()
        reopened = open_backend(tmp_path / "noext")
        assert isinstance(reopened, SQLiteBackend)
        assert reopened.get("synth", KEY_A) == {"v": 1}


# ---------------------------------------------------------------------- #
class TestArtifactStoreTiers:
    def test_memory_tier_hit(self, tmp_path):
        store = ArtifactStore()
        store.put("synth", KEY_A, {"v": 1})
        assert store.get("synth", KEY_A) == {"v": 1}
        counters = store.counters()
        assert counters["memory_hits"] == 1
        assert counters["misses"] == 0

    def test_persistent_promotion(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        warm = ArtifactStore(backend=backend)
        warm.put("synth", KEY_A, {"v": 1})
        cold = ArtifactStore(backend=backend)
        assert cold.get("synth", KEY_A) == {"v": 1}
        assert cold.counters()["persistent_hits"] == 1
        # Promoted into the memory tier: second read never hits disk.
        assert cold.get("synth", KEY_A) == {"v": 1}
        assert cold.counters()["memory_hits"] == 1

    def test_lru_eviction(self):
        store = ArtifactStore(max_entries=2)
        store.put("synth", KEY_A, {"v": 1})
        store.put("synth", KEY_B, {"v": 2})
        store.get("synth", KEY_A)                  # A is now most recent
        store.put("synth", KEY_C, {"v": 3})        # evicts B
        assert store.get("synth", KEY_B) is None
        assert store.get("synth", KEY_A) == {"v": 1}
        assert store.memory_len("synth") == 2

    def test_per_kind_stats_isolated(self):
        store = ArtifactStore()
        store.put("graph", KEY_A, {"v": 1})
        store.get("graph", KEY_A)
        store.get("prediction", KEY_B)             # miss, other kind
        assert store.counters(("graph",))["memory_hits"] == 1
        assert store.counters(("graph",))["misses"] == 0
        assert store.counters(("prediction",))["misses"] == 1

    def test_stats_aggregation(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "s.sqlite")
        ArtifactStore(backend=backend).put("synth", KEY_A, {"v": 1})
        store = ArtifactStore(backend=backend)
        store.get("synth", KEY_A)                  # persistent hit
        store.get("synth", KEY_A)                  # memory hit
        store.get("synth", KEY_B)                  # miss
        stats = store.stats()
        assert stats["backend"] == "sqlite"
        assert stats["tiers"]["memory"]["hits"] == 1
        assert stats["tiers"]["persistent"]["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)
        assert stats["tiers"]["memory"]["hit_rate"] == pytest.approx(1 / 3)
        assert stats["kinds"]["synth"]["persistent_hits"] == 1

    def test_get_many_mixed_tiers(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "s.sqlite")
        ArtifactStore(backend=backend).put_many(
            "prediction", {KEY_A: {"v": 1}, KEY_B: {"v": 2}})
        store = ArtifactStore(backend=backend)
        store.put("prediction", KEY_C, {"v": 3})
        found = store.get_many("prediction", [KEY_A, KEY_B, KEY_C, "d" * 64])
        assert found == {KEY_A: {"v": 1}, KEY_B: {"v": 2}, KEY_C: {"v": 3}}
        counters = store.counters()
        assert counters["memory_hits"] == 1
        assert counters["persistent_hits"] == 2
        assert counters["misses"] == 1


class TestObjectTier:
    def test_object_hit_skips_decode(self):
        store = ArtifactStore()
        sentinel = object()
        store.put_object("graph", KEY_A, sentinel)
        decoded = store.get_object(
            "graph", KEY_A,
            decode=lambda payload: pytest.fail("decode on object hit"))
        assert decoded is sentinel
        assert store.counters()["object_hits"] == 1

    def test_lazy_encode_skipped_without_backend(self):
        store = ArtifactStore()
        calls = []
        store.put_object("graph", KEY_A, object(),
                         encode=lambda: calls.append(1) or {"v": 1})
        assert calls == []  # the PR-10 fix: no wasted serialization

    def test_encode_runs_once_with_backend(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        store = ArtifactStore(backend=backend)
        calls = []
        store.put_object("graph", KEY_A, object(),
                         encode=lambda: calls.append(1) or {"v": 7})
        assert calls == [1]
        assert backend.get("graph", KEY_A) == {"v": 7}

    def test_persistent_decode_and_promote(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        ArtifactStore(backend=backend).put("graph", KEY_A, {"v": 9})
        store = ArtifactStore(backend=backend)
        obj = store.get_object("graph", KEY_A,
                               decode=lambda payload: ("decoded", payload))
        assert obj == ("decoded", {"v": 9})
        again = store.get_object(
            "graph", KEY_A,
            decode=lambda payload: pytest.fail("decode on warm hit"))
        assert again is obj


class TestSingleFlight:
    def test_concurrent_compute_runs_once(self):
        store = ArtifactStore()
        gate = threading.Event()
        calls = []

        def compute():
            gate.wait(timeout=5)
            calls.append(1)
            return {"v": 42}

        results = [None] * 8
        threads = [threading.Thread(
            target=lambda i=i: results.__setitem__(
                i, store.get_or_compute("prediction", KEY_A, compute)))
            for i in range(8)]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert calls == [1]
        assert all(r == {"v": 42} for r in results)
        assert store.counters()["single_flight_hits"] == 7

    def test_owner_failure_does_not_poison_waiters(self):
        store = ArtifactStore()
        attempts = []

        def compute():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("owner dies")
            return {"v": 1}

        with pytest.raises(RuntimeError):
            store.get_or_compute("prediction", KEY_A, compute)
        # Key is not cached and is computable again.
        assert store.get_or_compute("prediction", KEY_A, compute) == {"v": 1}


# ---------------------------------------------------------------------- #
class TestGC:
    def test_age_bound(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "s.sqlite")
        backend.put("synth", KEY_A, {"v": 1})
        report = gc_backend(backend, max_age_s=3600.0)
        assert report["deleted"] == 0
        report = gc_backend(backend, max_age_s=0.0,
                            now=__import__("time").time() + 10)
        assert report["deleted"] == 1
        assert backend.get("synth", KEY_A) is None

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "s.sqlite")
        conn = backend._conn()
        for i, key in enumerate((KEY_A, KEY_B, KEY_C)):
            blob = json.dumps({"pad": "x" * 100}).encode()
            conn.execute(
                "INSERT INTO artifacts VALUES (?, ?, ?, ?, ?)",
                ("synth", key, blob, len(blob), float(i)))
        sizes = [e.size for e in backend.entries()]
        report = gc_backend(backend, max_bytes=sizes[0] * 2)
        assert report["deleted"] == 1
        assert backend.get("synth", KEY_A) is None   # oldest went first
        assert backend.get("synth", KEY_C) is not None

    def test_dry_run_deletes_nothing(self, tmp_path):
        for backend in both_backends(tmp_path):
            backend.put("synth", KEY_A, {"v": 1})
            report = gc_backend(backend, max_bytes=0, dry_run=True)
            assert report["deleted"] == 1 and report["dry_run"]
            assert backend.get("synth", KEY_A) == {"v": 1}


# ---------------------------------------------------------------------- #
class TestKeySchema:
    def test_layouts_match_legacy_bytes(self):
        # Frozen expectations: these are the exact digests the PR 1-9
        # key functions produced; changing them would orphan every
        # on-disk cache entry in the field.
        import hashlib

        h = hashlib.sha256(b"frontend-paths:v1")
        h.update(b"gfp")
        h.update(b"sfp")
        assert keys.paths_key("gfp", "sfp") == h.hexdigest()

        h = hashlib.sha256(b"synth:v1")
        for part in ("gfp", "lfp", "high", "afp"):
            h.update(part.encode())
            h.update(b"|")
        assert keys.synth_key("gfp", "lfp", "high", "afp") == h.hexdigest()

        h = hashlib.sha256()
        for part in ("gfp", "mfp", "sfp", "none"):
            h.update(part.encode())
            h.update(b"|")
        assert keys.prediction_key("gfp", "mfp", "sfp") == h.hexdigest()

    def test_training_request_key_is_order_insensitive(self):
        a = keys.training_request_key({"designs": ["x"], "seed": 0})
        b = keys.training_request_key({"seed": 0, "designs": ["x"]})
        assert a == b
        assert a != keys.training_request_key({"designs": ["x"], "seed": 1})


# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fitted_sns():
    from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig
    from repro.datagen import build_design_dataset
    from repro.designs import standard_designs
    from repro.synth import Synthesizer

    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs() if e.name in ("gpio16",
                                                           "piecewise8")]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=30, seed=0),
              circuitformer_config=CircuitformerConfig(
                  embedding_size=16, dim_feedforward=32, max_input_size=64),
              training_config=TrainingConfig(circuitformer_epochs=1,
                                             aggregator_epochs=10),
              num_aggregators=1)
    sns.fit(records, synthesizer=synth)
    return sns


class TestModelStore:
    def test_roundtrip_across_restart(self, fitted_sns, tmp_path):
        from repro.runtime import fingerprint_model

        backend = SQLiteBackend(tmp_path / "models.sqlite")
        models = ModelStore(ArtifactStore(backend=backend))
        training_fp = keys.training_request_key({"designs": ["gpio16"],
                                                 "seed": 0})
        model_fp = models.save(fitted_sns, name="tiny",
                               training_fp=training_fp)
        assert model_fp == fingerprint_model(fitted_sns)

        # A fresh store over the same backend — a restarted server.
        reborn = ModelStore(ArtifactStore(backend=backend))
        assert reborn.resolve_alias("tiny") == model_fp
        assert reborn.resolve_training(training_fp) == model_fp
        assert reborn.find("tiny") == model_fp
        assert reborn.find(model_fp[:12]) == model_fp
        assert reborn.fingerprints() == [model_fp]

        loaded = reborn.load(model_fp)
        assert fingerprint_model(loaded) == model_fp

    def test_alias_is_mutable(self, fitted_sns, tmp_path):
        models = ModelStore(ArtifactStore(
            backend=DirectoryBackend(tmp_path)))
        fp = models.save(fitted_sns, name="prod")
        # Re-pointing the alias is a replace put, not write-once.
        models.store.put("model-alias", keys.alias_key("prod"),
                         {"name": "prod", "model_fp": "f" * 64},
                         replace=True)
        assert models.resolve_alias("prod") == "f" * 64
        assert models.find(fp) == fp

    def test_find_misses_and_ambiguity(self, tmp_path):
        models = ModelStore(ArtifactStore())
        assert models.find("nothing") is None
        assert models.find("short") is None
        models.store.put("model", "abcd" * 16, {"format": "x"})
        models.store.put("model", "abcd" * 15 + "ffff", {"format": "x"})
        with pytest.raises(KeyError):
            models.find("abcdabcd")
