"""Tests for the Verilog front-end: lexer, parser, elaborator."""

import pytest

from repro.graphir import token_counts
from repro.synth import Synthesizer
from repro.verilog import (
    ElaborationError,
    VerilogSyntaxError,
    elaborate_source,
    parse_source,
    tokenize,
)

MAC_SRC = """
// 8-bit multiply-accumulate (the paper's Figure 2 example)
module mac(input [7:0] a, input [7:0] b, input clk, output [15:0] y);
  wire [15:0] p;
  assign p = a * b;
  reg [15:0] acc;
  always @(posedge clk) acc <= acc + p;
  assign y = acc;
endmodule
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("module m; endmodule")
        assert [t.kind for t in tokens] == ["KEYWORD", "IDENT", "OP", "KEYWORD", "EOF"]

    def test_comments_stripped(self):
        tokens = tokenize("a // line\n /* block\ncomment */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_sized_literals(self):
        from repro.verilog.lexer import parse_number
        assert parse_number("8'hFF") == (255, 8)
        assert parse_number("4'b1010") == (10, 4)
        assert parse_number("42") == (42, None)
        assert parse_number("8'bxxxx_1111") == (15, 8)

    def test_bad_character(self):
        with pytest.raises(VerilogSyntaxError):
            tokenize('module `bad')


class TestParser:
    def test_mac_module_structure(self):
        src = parse_source(MAC_SRC)
        m = src.module("mac")
        assert [p.name for p in m.ports] == ["a", "b", "clk", "y"]
        assert [p.direction for p in m.ports] == ["input", "input", "input", "output"]
        assert len(m.assigns) == 2
        assert len(m.always_blocks) == 1

    def test_parameters(self):
        src = parse_source("""
        module p #(parameter W = 8) (input [W-1:0] x, output [W-1:0] y);
          assign y = x + 1;
        endmodule
        """)
        m = src.module("p")
        assert m.params[0].name == "W"

    def test_nonansi_ports(self):
        src = parse_source("""
        module old(a, b, y);
          input [3:0] a, b;
          output [3:0] y;
          assign y = a & b;
        endmodule
        """)
        m = src.module("old")
        dirs = {p.name: p.direction for p in m.ports}
        assert dirs == {"a": "input", "b": "input", "y": "output"}

    def test_instance_named_and_positional(self):
        src = parse_source("""
        module child(input [3:0] x, output [3:0] y);
          assign y = x;
        endmodule
        module top(input [3:0] a, output [3:0] b, output [3:0] c);
          child u1 (.x(a), .y(b));
          child u2 (a, c);
        endmodule
        """)
        m = src.module("top")
        assert len(m.instances) == 2
        assert m.instances[0].connections[0][0] == "x"
        assert m.instances[1].connections[0][0] == ""

    def test_expression_precedence(self):
        src = parse_source("""
        module e(input [7:0] a, input [7:0] b, output [7:0] y);
          assign y = a + b * 2;
        endmodule
        """)
        from repro.verilog import ast
        expr = src.module("e").assigns[0].value
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_ternary_and_selects(self):
        src = parse_source("""
        module t(input [7:0] a, input s, output [3:0] y);
          assign y = s ? a[7:4] : a[3:0];
        endmodule
        """)
        from repro.verilog import ast
        expr = src.module("t").assigns[0].value
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.if_true, ast.PartSelect)

    def test_syntax_error_reports_line(self):
        with pytest.raises(VerilogSyntaxError, match="line 2"):
            parse_source("module m;\n@@@\nendmodule")

    def test_missing_semicolon(self):
        with pytest.raises(VerilogSyntaxError):
            parse_source("module m(input a) endmodule")


class TestElaborator:
    def test_mac_produces_figure2_graphir(self):
        g = elaborate_source(MAC_SRC)
        counts = token_counts(g)
        assert counts["io8"] == 2
        assert counts["mul16"] == 1
        assert counts["add16"] == 1
        assert counts["dff16"] == 1
        assert counts["io16"] == 1

    def test_feedback_register_loop(self):
        g = elaborate_source(MAC_SRC)
        dff = next(n for n in g.nodes() if n.node_type == "dff")
        add = next(n for n in g.nodes() if n.node_type == "add")
        assert add.node_id in g.predecessors(dff.node_id)
        assert dff.node_id in g.predecessors(add.node_id)

    def test_parameters_resolve_widths(self):
        g = elaborate_source("""
        module p #(parameter W = 32) (input [W-1:0] x, output [W-1:0] y);
          assign y = x + 1;
        endmodule
        """)
        assert token_counts(g)["add32"] == 1

    def test_hierarchy_flattens(self):
        g = elaborate_source("""
        module leaf(input [7:0] x, output [7:0] y);
          assign y = x * x;
        endmodule
        module top(input [7:0] a, output [7:0] o);
          wire [7:0] mid;
          leaf l1 (.x(a), .y(mid));
          leaf l2 (.x(mid), .y(o));
        endmodule
        """)
        counts = token_counts(g)
        assert counts["mul16"] == 2  # one multiplier per instance

    def test_parameter_override_in_instance(self):
        g = elaborate_source("""
        module leaf #(parameter W = 8) (input [W-1:0] x, output [W-1:0] y);
          assign y = x + x;
        endmodule
        module top(input [31:0] a, output [31:0] o);
          leaf #(.W(32)) wide (.x(a), .y(o));
        endmodule
        """)
        assert token_counts(g)["add32"] == 1

    def test_ternary_becomes_mux(self):
        g = elaborate_source("""
        module t(input s, input [7:0] a, input [7:0] b, output [7:0] y);
          assign y = s ? a : b;
        endmodule
        """)
        assert token_counts(g)["mux8"] == 1

    def test_comparisons_and_reductions(self):
        g = elaborate_source("""
        module c(input [15:0] a, input [15:0] b, output y);
          assign y = (a == b) | (a < b) | (^a);
        endmodule
        """)
        counts = token_counts(g)
        assert counts["eq16"] == 1
        assert counts["lgt16"] == 1
        assert counts["reduce_xor16"] == 1

    def test_undefined_name(self):
        with pytest.raises(ElaborationError, match="undefined"):
            elaborate_source("""
            module u(output [7:0] y);
              assign y = ghost + 1;
            endmodule
            """)

    def test_combinational_loop_detected(self):
        with pytest.raises(ElaborationError, match="loop"):
            elaborate_source("""
            module l(output [7:0] y);
              wire [7:0] a;
              wire [7:0] b;
              assign a = b + 1;
              assign b = a + 1;
              assign y = a;
            endmodule
            """)

    def test_register_loop_is_legal(self):
        g = elaborate_source("""
        module ctr(input clk, output [7:0] q);
          reg [7:0] count;
          always @(posedge clk) count <= count + 1;
          assign q = count;
        endmodule
        """)
        assert token_counts(g)["dff8"] == 1

    def test_undeclared_register(self):
        with pytest.raises(ElaborationError, match="never declared"):
            elaborate_source("""
            module r(input clk, input [7:0] d, output [7:0] q);
              always @(posedge clk) phantom <= d;
              assign q = d;
            endmodule
            """)

    def test_top_inference_ambiguous(self):
        with pytest.raises(ElaborationError, match="top"):
            elaborate_source("""
            module a(input x, output y); assign y = x; endmodule
            module b(input x, output y); assign y = x; endmodule
            """)

    def test_explicit_top(self):
        g = elaborate_source("""
        module a(input [7:0] x, output [7:0] y); assign y = x + 1; endmodule
        module b(input [7:0] x, output [7:0] y); assign y = x * x; endmodule
        """, top="b")
        assert token_counts(g)["mul16"] == 1

    def test_dynamic_bit_select_costs_a_shifter(self):
        g = elaborate_source("""
        module d(input [7:0] a, input [2:0] i, output y);
          assign y = a[i];
        endmodule
        """)
        assert token_counts(g)["sh8"] == 1

    def test_static_part_select_is_free(self):
        g = elaborate_source("""
        module s(input [15:0] a, output [7:0] y);
          assign y = a[7:0];
        endmodule
        """)
        # Only the two ports; the select adds no vertex.
        assert g.num_nodes == 2


class TestVerilogToSynthesis:
    """The full paper flow: Verilog text -> GraphIR -> synthesis labels."""

    def test_mac_synthesizes(self):
        result = Synthesizer(effort="low").synthesize(elaborate_source(MAC_SRC))
        assert result.timing_ps > 0 and result.area_um2 > 0

    def test_order_sensitivity_visible_from_verilog(self):
        mul_first = elaborate_source("""
        module f(input [7:0] a, input [15:0] c, input clk, output [15:0] y);
          reg [15:0] r;
          always @(posedge clk) r <= a * a + c;
          assign y = r;
        endmodule
        """)
        add_first = elaborate_source("""
        module g(input [7:0] a, input [15:0] c, input clk, output [15:0] y);
          reg [15:0] r;
          always @(posedge clk) r <= (a + a) * c;
          assign y = r;
        endmodule
        """)
        synth = Synthesizer(effort="low")
        assert synth.synthesize(mul_first).area_um2 < synth.synthesize(add_first).area_um2

    def test_sns_pipeline_accepts_verilog(self):
        """Verilog designs drop into the same path sampler as DSL designs."""
        from repro.core import PathSampler
        paths = PathSampler(k=1).sample(elaborate_source(MAC_SRC))
        assert any("mul16" in p.tokens for p in paths)
