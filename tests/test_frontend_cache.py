"""Tests for the content-addressed front-end compile cache."""

import pytest

from repro.core.sampler import PathSampler
from repro.designs import standard_designs
from repro.graphir import CompiledGraph
from repro.runtime import (FrontendCache, compile_design, compile_module,
                           compile_source, compile_source_profiled,
                           fingerprint_frontend_module,
                           fingerprint_frontend_source)

SRC = """
module mac (input [7:0] a, input [7:0] b, output [15:0] out);
  reg [15:0] acc;
  always @(posedge clk) begin
    acc <= acc + (a * b);
  end
  assign out = acc;
endmodule
"""

SRC_B = SRC.replace("a * b", "a + b")


class TestSourceCache:
    def test_hit_skips_elaboration(self):
        cache = FrontendCache()
        cg1 = compile_source(SRC, cache=cache)
        assert isinstance(cg1, CompiledGraph)
        cg2 = compile_source(SRC, cache=cache)
        assert cg2 is cg1  # object-tier hit, no rebuild
        assert cache.stats["object_hits"] == 1

    def test_different_source_misses(self):
        cache = FrontendCache()
        cg1 = compile_source(SRC, cache=cache)
        cg2 = compile_source(SRC_B, cache=cache)
        assert cg1.fingerprint() != cg2.fingerprint()

    def test_disk_tier_survives_new_cache(self, tmp_path):
        cold = FrontendCache(disk_dir=tmp_path)
        cg1 = compile_source(SRC, cache=cold)
        warm = FrontendCache(disk_dir=tmp_path)
        cg2 = compile_source(SRC, cache=warm)
        assert warm.stats["disk_hits"] == 1
        assert cg2.fingerprint() == cg1.fingerprint()
        assert cg2.labels == cg1.labels

    def test_key_sensitivity(self):
        base = fingerprint_frontend_source(SRC)
        assert fingerprint_frontend_source(SRC + " ") != base
        assert fingerprint_frontend_source(SRC, top="mac") != base
        assert fingerprint_frontend_source(SRC, defines={"X": "1"}) != base

    def test_profiled_hit_and_miss(self):
        cache = FrontendCache()
        cg1, p1 = compile_source_profiled(SRC, cache=cache)
        assert not p1.cache_hit
        assert p1.elaborate_s > 0
        cg2, p2 = compile_source_profiled(SRC, cache=cache)
        assert p2.cache_hit
        assert cg2 is cg1


class TestModuleCache:
    def test_module_cached_by_class_and_params(self):
        entry = standard_designs()[0]
        cache = FrontendCache()
        cg1 = compile_module(entry.module, cache=cache)
        cg2 = compile_module(entry.module, cache=cache)
        assert cg2 is cg1

    def test_params_change_the_key(self):
        a, b = standard_designs()[:2]
        assert (fingerprint_frontend_module(a.module)
                != fingerprint_frontend_module(b.module))

    def test_compile_design_dispatch(self):
        entry = standard_designs()[0]
        graph = entry.module.elaborate()
        cache = FrontendCache()
        from_graph = compile_design(graph)
        from_module = compile_design(entry.module, cache)
        assert from_graph.fingerprint() == from_module.fingerprint()
        assert compile_design(from_graph) is from_graph


class TestPathReplay:
    def test_replayed_paths_equal_fresh_sample(self, tmp_path):
        entry = standard_designs()[0]
        sampler = PathSampler(k=3, seed=11)
        cache = FrontendCache(disk_dir=tmp_path)
        cg = compile_module(entry.module, cache=cache)
        first = cache.sample(cg, sampler)
        fresh = sampler.sample(cg)
        assert [(p.node_ids, p.tokens) for p in first] \
            == [(p.node_ids, p.tokens) for p in fresh]
        # Replay from a cold cache (disk tier): tokens are rebuilt from
        # the compiled graph, node ids from the stored lists.
        warm = FrontendCache(disk_dir=tmp_path)
        replayed = warm.get_paths(cg, sampler)
        assert replayed is not None
        assert [(p.node_ids, p.tokens) for p in replayed] \
            == [(p.node_ids, p.tokens) for p in fresh]

    def test_sampler_config_changes_the_key(self):
        entry = standard_designs()[0]
        cache = FrontendCache()
        cg = compile_module(entry.module, cache=cache)
        cache.sample(cg, PathSampler(k=3))
        assert cache.get_paths(cg, PathSampler(k=5)) is None
        assert cache.get_paths(cg, PathSampler(k=3, seed=9)) is None


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def tiny_sns(self):
        from repro.core import SNS, CircuitformerConfig, TrainingConfig
        from repro.datagen import build_design_dataset
        from repro.synth import Synthesizer

        synth = Synthesizer(effort="low")
        entries = [e for e in standard_designs()
                   if e.name in ("gpio16", "piecewise8", "mergesort8")]
        records = build_design_dataset(entries, synth)
        sns = SNS(sampler=PathSampler(k=5, max_paths=30, seed=0),
                  circuitformer_config=CircuitformerConfig(
                      embedding_size=16, dim_feedforward=32, max_input_size=64),
                  training_config=TrainingConfig(circuitformer_epochs=2,
                                                 aggregator_epochs=20))
        sns.fit(records, synthesizer=synth)
        return sns, entries

    def test_predict_many_with_frontend_cache_is_identical(self, tiny_sns):
        # Module inputs through the compiled front end + FrontendCache
        # must match predictions on plain elaborated CircuitGraphs.
        sns, entries = tiny_sns
        modules = [e.module for e in entries]
        graphs = [e.module.elaborate() for e in entries]
        fe = FrontendCache()
        cached = sns.predict_many(modules, frontend_cache=fe)
        # Second pass: everything (graphs + paths) replays from the cache.
        replayed = sns.predict_many(modules, frontend_cache=fe)
        plain = sns.predict_many(graphs)
        for a, b, c in zip(cached, replayed, plain):
            assert a.timing_ps == c.timing_ps == b.timing_ps
            assert a.area_um2 == c.area_um2 == b.area_um2
            assert a.power_mw == c.power_mw == b.power_mw
            assert a.num_paths == c.num_paths == b.num_paths
