"""Tests for the backward-retiming pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.test_synth_properties import random_pipeline_graph

from repro.graphir import CircuitGraph
from repro.synth import (
    FREEPDK15,
    MappedNetlist,
    retime_backward,
    static_timing_analysis,
    total_area,
)


def unbalanced_pipeline() -> CircuitGraph:
    """Deep front stage (mul chain) into a register, then a shallow stage."""
    g = CircuitGraph("unbalanced")
    src = g.add_node("dff", 16)
    deep = src
    for _ in range(3):
        node = g.add_node("mul", 16)
        g.add_edge(deep, node)
        deep = node
    mid = g.add_node("dff", 16)
    g.add_edge(deep, mid)
    shallow = g.add_node("xor", 16)
    g.add_edge(mid, shallow)
    sink = g.add_node("dff", 16)
    g.add_edge(shallow, sink)
    return g


class TestRetiming:
    def test_improves_unbalanced_pipeline(self):
        net = MappedNetlist.from_graphir(unbalanced_pipeline())
        before = static_timing_analysis(net, FREEPDK15).critical_path_ps
        moves = retime_backward(net, FREEPDK15, max_moves=4)
        after = static_timing_analysis(net, FREEPDK15).critical_path_ps
        assert moves >= 1
        assert after < before

    def test_never_worsens_timing(self):
        net = MappedNetlist.from_graphir(unbalanced_pipeline())
        before = static_timing_analysis(net, FREEPDK15).critical_path_ps
        retime_backward(net, FREEPDK15, max_moves=10)
        after = static_timing_analysis(net, FREEPDK15).critical_path_ps
        assert after <= before + 1e-9

    def test_balanced_pipeline_untouched(self):
        """A well-balanced pipeline has nothing to gain; rollback leaves
        it equivalent."""
        g = CircuitGraph("balanced")
        prev = g.add_node("dff", 16)
        for _ in range(3):
            node = g.add_node("add", 16)
            g.add_edge(prev, node)
            reg = g.add_node("dff", 16)
            g.add_edge(node, reg)
            prev = reg
        net = MappedNetlist.from_graphir(g)
        before = static_timing_analysis(net, FREEPDK15).critical_path_ps
        retime_backward(net, FREEPDK15, max_moves=5)
        after = static_timing_analysis(net, FREEPDK15).critical_path_ps
        assert after <= before + 1e-9

    def test_rollback_restores_netlist(self):
        """When no move helps, cell/edge counts come back unchanged."""
        g = CircuitGraph("flat")
        a = g.add_node("dff", 8)
        x = g.add_node("xor", 8)
        d = g.add_node("dff", 8)
        g.add_edge(a, x)
        g.add_edge(x, d)
        net = MappedNetlist.from_graphir(g)
        cells_before = net.num_cells
        edges_before = net.num_edges
        retime_backward(net, FREEPDK15, max_moves=3)
        assert net.num_cells == cells_before
        assert net.num_edges == edges_before

    def test_sequential_depth_preserved(self):
        """Retiming must not change the number of register stages on the
        moved path (one register before vs after the driver)."""
        net = MappedNetlist.from_graphir(unbalanced_pipeline())
        seq_before = sum(1 for c in net.cells.values() if c.is_sequential)
        moves = retime_backward(net, FREEPDK15, max_moves=1)
        seq_after = sum(1 for c in net.cells.values() if c.is_sequential)
        if moves:
            # single-fanin driver: one register swapped for one register
            assert seq_after == seq_before

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5000))
    def test_property_retiming_never_hurts_random_graphs(self, seed):
        net = MappedNetlist.from_graphir(
            random_pipeline_graph(np.random.default_rng(seed), 3, 3))
        before = static_timing_analysis(net, FREEPDK15).critical_path_ps
        retime_backward(net, FREEPDK15, max_moves=5)
        after = static_timing_analysis(net, FREEPDK15).critical_path_ps
        assert after <= before + 1e-9
        net.combinational_topo_order()  # still a legal netlist
