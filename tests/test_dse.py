"""Tests for the generic design-space exploration utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import GEMMUnit, SIMDALU
from repro.dse import DesignSpaceExplorer, ParameterGrid
from repro.synth import Synthesizer


class TestParameterGrid:
    def test_len_is_product(self):
        grid = ParameterGrid({"a": (1, 2), "b": (1, 2, 3), "c": (True, False)})
        assert len(grid) == 12

    def test_iteration_covers_all(self):
        grid = ParameterGrid({"a": (1, 2), "b": ("x", "y")})
        points = list(grid)
        assert len(points) == 4
        assert {tuple(sorted(p.items())) for p in points} == {
            (("a", 1), ("b", "x")), (("a", 1), ("b", "y")),
            (("a", 2), ("b", "x")), (("a", 2), ("b", "y"))}

    def test_subset_constraint_and_stride(self):
        grid = ParameterGrid({"n": tuple(range(10))})
        evens = grid.subset(constraint=lambda p: p["n"] % 2 == 0)
        assert [p["n"] for p in evens] == [0, 2, 4, 6, 8]
        strided = grid.subset(stride=3)
        assert [p["n"] for p in strided] == [0, 3, 6, 9]

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": ()})

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": (1,)}).subset(stride=0)

    def test_describe(self):
        text = ParameterGrid({"w": (8, 16)}).describe()
        assert "w: 8, 16 (2)" in text
        assert "total combinations: 2" in text

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_property_len_matches_iteration(self, n_a, n_b):
        grid = ParameterGrid({"a": tuple(range(n_a)), "b": tuple(range(n_b))})
        assert len(list(grid)) == len(grid) == n_a * n_b


class TestExplorer:
    @pytest.fixture(scope="class")
    def result(self):
        explorer = DesignSpaceExplorer(SIMDALU, Synthesizer(effort="low"))
        grid = ParameterGrid({"lanes": (1, 2, 4), "width": (16, 32)})
        return explorer.explore(grid)

    def test_all_points_evaluated(self, result):
        assert len(result.points) == 6
        assert result.runtime_s > 0

    def test_points_carry_params(self, result):
        lanes = sorted({p.params["lanes"] for p in result.points})
        assert lanes == [1, 2, 4]

    def test_bigger_configs_cost_more(self, result):
        by_params = {(p.params["lanes"], p.params["width"]): p
                     for p in result.points}
        assert by_params[(4, 32)].area_um2 > by_params[(1, 16)].area_um2

    def test_default_score_is_frequency(self, result):
        for p in result.points:
            assert p.score == pytest.approx(p.frequency_ghz, rel=1e-9)

    def test_custom_score(self):
        explorer = DesignSpaceExplorer(
            SIMDALU, Synthesizer(effort="low"),
            score=lambda params, t, a, pw: params["lanes"] * 1000.0 / t)
        point = explorer.evaluate({"lanes": 4, "width": 16})
        assert point.score == pytest.approx(4 * point.frequency_ghz, rel=1e-9)

    def test_pareto_front_dominance(self, result):
        front = result.pareto(cost="area_um2")
        areas = [p.area_um2 for p in front]
        scores = [p.score for p in front]
        assert areas == sorted(areas)
        assert scores == sorted(scores)

    def test_best_by_name_and_callable(self, result):
        assert result.best("score").score == max(p.score for p in result.points)
        cheapest = result.best(lambda p: -p.area_um2)
        assert cheapest.area_um2 == min(p.area_um2 for p in result.points)

    def test_constraint_filters(self):
        explorer = DesignSpaceExplorer(GEMMUnit, Synthesizer(effort="low"))
        grid = ParameterGrid({"rows": (1, 2), "cols": (1, 2)})
        result = explorer.explore(grid, constraint=lambda p: p["rows"] == p["cols"])
        assert len(result.points) == 2

    def test_empty_after_filter_raises(self):
        explorer = DesignSpaceExplorer(SIMDALU, Synthesizer(effort="low"))
        with pytest.raises(ValueError):
            explorer.explore(ParameterGrid({"lanes": (1,)}),
                             constraint=lambda p: False)

    def test_bad_engine_rejected(self):
        with pytest.raises(TypeError):
            DesignSpaceExplorer(SIMDALU, engine="yosys")
