"""Cross-process safety of the shared persistent store tiers.

Serve workers, datagen pool workers, and DSE sweeps all mount one
persistent backend concurrently.  These tests hammer both backends from
real subprocesses (not threads — sqlite locking and rename atomicity
behave differently across processes) and pin the properties the store
guarantees:

- **no torn reads**: every payload read back is internally consistent
  (a checksum over its body matches), even with many processes writing
  overlapping write-once keys;
- **crash safety**: a writer SIGKILLed mid-stream never leaves an entry
  that poisons later mounts — the store opens, reads, and heals;
- **single-flight**: concurrent in-process computations of one key run
  once.
"""

import hashlib
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.store import ArtifactStore, open_backend

NPROC = 4
KEYS_PER_PROC = 24
SHARED_KEYS = 8  # every process also fights over these

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


def verify(payload: dict) -> None:
    digest = hashlib.sha256(
        (payload["key"] + payload["body"]).encode()).hexdigest()
    assert payload["checksum"] == digest, "torn or mixed payload"


def run_workers(tmp_path, spec, script):
    env = {**os.environ, "PYTHONPATH": SRC}
    procs = [subprocess.Popen(
        [sys.executable, "-c", script, str(spec), str(i)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        for i in range(NPROC)]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()


HAMMER = r"""
import hashlib, json, sys
from repro.store import open_backend

spec, rank = sys.argv[1], int(sys.argv[2])
backend = open_backend(spec)

def checksummed(key, body):
    digest = hashlib.sha256((key + body).encode()).hexdigest()
    return {"key": key, "body": body, "checksum": digest}

for i in range(24):
    key = hashlib.sha256(f"own-{rank}-{i}".encode()).hexdigest()
    backend.put("prediction", key, checksummed(key, "x" * 512))
for i in range(8):
    # Contended write-once keys: all ranks race on these.  The payload
    # is a pure function of the key, so whoever wins, readers must see
    # a self-consistent entry.
    key = hashlib.sha256(f"shared-{i}".encode()).hexdigest()
    backend.put("prediction", key, checksummed(key, "y" * 2048))
    got = backend.get("prediction", key)
    if got is not None:
        digest = hashlib.sha256((got["key"] + got["body"]).encode()).hexdigest()
        assert got["checksum"] == digest, "torn read"
"""


@pytest.mark.parametrize("make_spec", [
    pytest.param(lambda p: p / "store-dir", id="directory"),
    pytest.param(lambda p: p / "store.sqlite", id="sqlite"),
])
class TestMultiProcess:
    def test_hammer_no_torn_reads(self, tmp_path, make_spec):
        spec = make_spec(tmp_path)
        run_workers(tmp_path, spec, HAMMER)
        backend = open_backend(spec)
        expected = NPROC * KEYS_PER_PROC + SHARED_KEYS
        entries = list(backend.entries())
        assert len(entries) == expected
        for rank in range(NPROC):
            for i in range(KEYS_PER_PROC):
                key = hashlib.sha256(f"own-{rank}-{i}".encode()).hexdigest()
                payload = backend.get("prediction", key)
                assert payload is not None
                verify(payload)
        shared = [hashlib.sha256(f"shared-{i}".encode()).hexdigest()
                  for i in range(SHARED_KEYS)]
        found = backend.get_many("prediction", shared)
        assert set(found) == set(shared)
        for payload in found.values():
            verify(payload)

    def test_store_level_cross_process_warm(self, tmp_path, make_spec):
        spec = make_spec(tmp_path)
        run_workers(tmp_path, spec, HAMMER)
        # A fresh ArtifactStore in this (different) process sees every
        # subprocess write as a persistent hit.
        store = ArtifactStore(backend=open_backend(spec))
        key = hashlib.sha256(b"own-0-0").hexdigest()
        payload = store.get("prediction", key)
        verify(payload)
        assert store.counters()["persistent_hits"] == 1

    def test_killed_mid_write_does_not_poison(self, tmp_path, make_spec):
        spec = make_spec(tmp_path)
        script = r"""
import hashlib, sys
from repro.store import open_backend

spec = sys.argv[1]
backend = open_backend(spec)
i = 0
print("ready", flush=True)
while True:
    key = hashlib.sha256(f"victim-{i}".encode()).hexdigest()
    backend.put("prediction", key,
                {"key": key, "body": "z" * 4096,
                 "checksum": hashlib.sha256(
                     (key + "z" * 4096).encode()).hexdigest()})
    i += 1
"""
        env = {**os.environ, "PYTHONPATH": SRC}
        proc = subprocess.Popen([sys.executable, "-c", script, str(spec)],
                                env=env, stdout=subprocess.PIPE)
        assert proc.stdout.readline().strip() == b"ready"
        time.sleep(0.3)  # let it write mid-stream
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        backend = open_backend(spec)
        survivors = 0
        for i in range(10_000):
            key = hashlib.sha256(f"victim-{i}".encode()).hexdigest()
            payload = backend.get("prediction", key)
            if payload is None:
                break  # keys are written in order; first gap ends the run
            verify(payload)
            survivors += 1
        assert survivors > 0, "victim never published anything"
        # The store stays fully writable after the crash.
        backend.put("prediction", "f" * 64, {"v": 1})
        assert backend.get("prediction", "f" * 64) == {"v": 1}

    def test_no_leaked_temp_files(self, tmp_path, make_spec):
        spec = make_spec(tmp_path)
        run_workers(tmp_path, spec, HAMMER)
        if spec.suffix:  # sqlite: nothing to check on disk layout
            return
        leftovers = [p for p in spec.rglob("*")
                     if p.is_file() and p.suffix == ".tmp"]
        assert leftovers == []


class TestSingleFlightUnderProcesses:
    def test_compute_once_per_process_cluster(self, tmp_path):
        # Cross-process "single flight" is write-once at the backend:
        # every process may compute, but the store converges on one
        # entry and later mounts replay it without computing.
        spec = tmp_path / "store.sqlite"
        script = r"""
import hashlib, json, sys
from repro.store import ArtifactStore, open_backend

spec = sys.argv[1]
store = ArtifactStore(backend=open_backend(spec))
key = "e" * 64
value = store.get_or_compute(
    "prediction", key,
    lambda: {"key": key, "body": "w" * 256,
             "checksum": hashlib.sha256((key + "w" * 256).encode()).hexdigest()})
digest = hashlib.sha256((value["key"] + value["body"]).encode()).hexdigest()
assert value["checksum"] == digest
"""
        run_workers(tmp_path, spec, script)
        backend = open_backend(spec)
        [entry] = [e for e in backend.entries() if e.key == "e" * 64]
        payload = backend.get("prediction", "e" * 64)
        verify(payload)
        # A warm mount never recomputes.
        store = ArtifactStore(backend=backend)
        value = store.get_or_compute(
            "prediction", "e" * 64,
            lambda: pytest.fail("warm mount recomputed"))
        verify(value)
