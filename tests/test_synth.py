"""Tests for the reference synthesizer: library, passes, STA, power, scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphir import CircuitGraph
from repro.hdl import Circuit, Module, adder_tree
from repro.synth import (
    FREEPDK15,
    MappedNetlist,
    Synthesizer,
    buffer_insertion,
    common_subexpression_elimination,
    mac_fusion,
    path_to_graph,
    scale_result,
    scale_value,
    static_timing_analysis,
    total_area,
    total_power,
)


def mac_graph(order="mul_first") -> CircuitGraph:
    """Chain io8 -> (mul16 -> add16 | add16 -> mul16) -> dff16 -> io16."""
    g = CircuitGraph("chain")
    a = g.add_node("io", 8)
    first = g.add_node("mul" if order == "mul_first" else "add", 16)
    second = g.add_node("add" if order == "mul_first" else "mul", 16)
    d = g.add_node("dff", 16)
    o = g.add_node("io", 16)
    g.add_edge(a, first)
    g.add_edge(first, second)
    g.add_edge(second, d)
    g.add_edge(d, o)
    return g


class TestLibrary:
    def test_mul_area_superlinear(self):
        lib = FREEPDK15
        a8 = lib.cost("mul", 8).area
        a16 = lib.cost("mul", 16).area
        assert a16 > 3 * a8  # quadratic-ish growth

    def test_add_area_linear(self):
        lib = FREEPDK15
        assert lib.cost("add", 32).area == pytest.approx(2 * lib.cost("add", 16).area, rel=0.05)

    def test_div_slower_than_mul(self):
        lib = FREEPDK15
        assert lib.cost("div", 16).delay > lib.cost("mul", 16).delay

    def test_mac_cheaper_than_mul_plus_add(self):
        lib = FREEPDK15
        mac = lib.cost("mac", 16)
        mul, add = lib.cost("mul", 16), lib.cost("add", 16)
        assert mac.area < mul.area + add.area
        assert mac.delay < mul.delay + add.delay

    def test_io_has_no_area(self):
        assert FREEPDK15.cost("io", 32).area == 0.0

    def test_dff_costs_scale_with_width(self):
        lib = FREEPDK15
        assert lib.cost("dff", 32).area == pytest.approx(2 * lib.cost("dff", 16).area)

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            FREEPDK15.cost("qubit", 8)

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["add", "mul", "mux", "xor", "sh", "eq", "div"]),
           st.integers(2, 64))
    def test_property_costs_positive_and_monotone(self, t, w):
        lib = FREEPDK15
        c1, c2 = lib.cost(t, w), lib.cost(t, w + 1)
        assert c1.area > 0 and c1.delay > 0 and c1.energy > 0
        assert c2.area >= c1.area


class TestPasses:
    def test_cse_merges_duplicates(self):
        c = Circuit()
        a, b = c.input("a", 8), c.input("b", 8)
        x = a + b
        y = a + b  # identical expression
        c.output("o1", x)
        c.output("o2", y)
        net = MappedNetlist.from_graphir(c.finalize())
        removed = common_subexpression_elimination(net)
        assert removed == 1

    def test_cse_does_not_merge_registers(self):
        c = Circuit()
        a = c.input("a", 8)
        c.reg(a)
        c.reg(a)
        net = MappedNetlist.from_graphir(c.finalize())
        assert common_subexpression_elimination(net) == 0

    def test_mac_fusion_happens_for_mul_then_add(self):
        net = MappedNetlist.from_graphir(mac_graph("mul_first"))
        assert mac_fusion(net) == 1
        types = sorted(cell.cell_type for cell in net.cells.values())
        assert "mac" in types and "mul" not in types

    def test_no_fusion_for_add_then_mul(self):
        net = MappedNetlist.from_graphir(mac_graph("add_first"))
        assert mac_fusion(net) == 0

    def test_no_fusion_when_mul_has_other_consumers(self):
        g = CircuitGraph()
        a = g.add_node("io", 8)
        m = g.add_node("mul", 16)
        add = g.add_node("add", 16)
        other = g.add_node("xor", 16)
        g.add_edge(a, m)
        g.add_edge(m, add)
        g.add_edge(m, other)
        net = MappedNetlist.from_graphir(g)
        assert mac_fusion(net) == 0

    def test_buffer_insertion_splits_fanout(self):
        g = CircuitGraph()
        src = g.add_node("dff", 8)
        for _ in range(20):
            sink = g.add_node("xor", 8)
            g.add_edge(src, sink)
        net = MappedNetlist.from_graphir(g)
        added = buffer_insertion(net)
        assert added > 0
        assert all(len(net.succ[cid]) <= 6 for cid in net.cells)

    def test_order_sensitivity_end_to_end(self):
        """The paper's motivating example: [mul, add] beats [add, mul]."""
        synth = Synthesizer(effort="low")
        fused = synth.synthesize(mac_graph("mul_first"))
        unfused = synth.synthesize(mac_graph("add_first"))
        assert fused.area_um2 < unfused.area_um2
        assert fused.timing_ps < unfused.timing_ps


class TestSTA:
    def test_empty_graph(self):
        report = static_timing_analysis(MappedNetlist(), FREEPDK15)
        assert report.critical_path_ps == 0.0

    def test_deeper_pipeline_shortens_critical_path(self):
        def build(stages):
            c = Circuit()
            x = c.input("x", 16)
            y = x
            for _ in range(4):
                y = y * 3  # deep combinational chain
                if stages:
                    y = c.reg(y)
            c.output("o", y)
            return c.finalize()

        synth = Synthesizer(effort="low")
        deep = synth.synthesize(build(stages=False))
        piped = synth.synthesize(build(stages=True))
        assert piped.timing_ps < deep.timing_ps

    def test_combinational_loop_detected(self):
        g = CircuitGraph()
        a = g.add_node("and", 8)
        b = g.add_node("or", 8)
        g.add_edge(a, b)
        g.add_edge(b, a)
        net = MappedNetlist.from_graphir(g)
        with pytest.raises(ValueError, match="combinational loop"):
            static_timing_analysis(net, FREEPDK15)

    def test_register_feedback_is_legal(self):
        c = Circuit()
        a = c.input("a", 8)
        acc = c.reg_declare(8)
        c.connect_next(acc, acc + a)
        net = MappedNetlist.from_graphir(c.finalize())
        report = static_timing_analysis(net, FREEPDK15)
        assert report.critical_path_ps > 0

    def test_critical_path_cells_are_connected(self):
        net = MappedNetlist.from_graphir(mac_graph("mul_first"))
        report = static_timing_analysis(net, FREEPDK15)
        cells = report.critical_cells
        assert len(cells) >= 2
        for src, dst in zip(cells, cells[1:]):
            assert dst in net.succ[src]


class TestPowerArea:
    def test_area_sums_cells(self):
        net = MappedNetlist.from_graphir(mac_graph())
        area = total_area(net, FREEPDK15)
        manual = sum(FREEPDK15.cost(c.cell_type, c.width).area for c in net.cells.values())
        assert area == pytest.approx(manual)

    def test_power_scales_with_frequency(self):
        net = MappedNetlist.from_graphir(mac_graph())
        p1 = total_power(net, FREEPDK15, frequency_ghz=1.0)
        p2 = total_power(net, FREEPDK15, frequency_ghz=2.0)
        assert p2 > p1
        assert p2 < 2.5 * p1  # leakage component does not scale

    def test_activity_coefficient_reduces_power(self):
        net = MappedNetlist.from_graphir(mac_graph())
        dff_id = next(cid for cid, c in net.cells.items() if c.cell_type == "dff")
        base = total_power(net, FREEPDK15, 1.0)
        gated = total_power(net, FREEPDK15, 1.0, activity={dff_id: 0.01})
        assert gated < base


class TestSynthesizer:
    def test_result_fields_populated(self):
        result = Synthesizer(effort="low").synthesize(mac_graph())
        assert result.timing_ps > 0
        assert result.area_um2 > 0
        assert result.power_mw > 0
        assert result.num_cells >= 4
        assert result.runtime_s > 0
        assert result.frequency_ghz == pytest.approx(1000 / result.timing_ps)

    def test_higher_effort_not_slower_design(self):
        class Wide(Module):
            def build(self, c):
                xs = [c.input(f"x{i}", 16) for i in range(8)]
                s = adder_tree(c, [x * x for x in xs])
                c.output("o", c.reg(s))

        g = Wide().elaborate()
        low = Synthesizer(effort="low").synthesize(g)
        high = Synthesizer(effort="high").synthesize(g)
        assert high.timing_ps <= low.timing_ps * 1.001

    def test_invalid_effort(self):
        with pytest.raises(ValueError):
            Synthesizer(effort="turbo")

    def test_deterministic(self):
        r1 = Synthesizer(effort="low").synthesize(mac_graph())
        r2 = Synthesizer(effort="low").synthesize(mac_graph())
        assert r1.area_um2 == r2.area_um2
        assert r1.timing_ps == r2.timing_ps

    def test_bigger_design_costs_more(self):
        class Tree(Module):
            def __init__(self, n):
                super().__init__(n=n)

            def build(self, c):
                xs = [c.input(f"x{i}", 8) for i in range(self.params["n"])]
                c.output("o", c.reg(adder_tree(c, xs)))

        small = Synthesizer(effort="low").synthesize(Tree(4).elaborate())
        big = Synthesizer(effort="low").synthesize(Tree(32).elaborate())
        assert big.area_um2 > small.area_um2
        assert big.gate_count > small.gate_count


class TestPathSynthesis:
    def test_path_to_graph_roundtrip(self):
        g = path_to_graph(["io8", "mul16", "add16", "dff16"])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_path_empty_raises(self):
        with pytest.raises(ValueError):
            path_to_graph([])

    def test_path_unknown_token_raises(self):
        with pytest.raises(KeyError):
            path_to_graph(["io8", "warp9"])

    def test_paper_order_example(self):
        """Table 5 labels must be order-sensitive: [mul,add] < [add,mul]."""
        synth = Synthesizer()
        mul_first = synth.synthesize_path(["io8", "mul16", "add16", "dff16"])
        add_first = synth.synthesize_path(["io8", "add16", "mul16", "dff16"])
        assert mul_first.area_um2 < add_first.area_um2
        assert mul_first.timing_ps < add_first.timing_ps

    def test_longer_path_slower(self):
        synth = Synthesizer()
        short = synth.synthesize_path(["dff16", "add16", "dff16"])
        long = synth.synthesize_path(["dff16", "add16", "add16", "add16", "dff16"])
        assert long.timing_ps > short.timing_ps
        assert long.area_um2 > short.area_um2

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["add16", "mul16", "xor16", "mux16", "sh16"]),
                    min_size=1, max_size=8))
    def test_property_path_labels_positive(self, middle):
        synth = Synthesizer()
        res = synth.synthesize_path(["dff16"] + middle + ["dff16"])
        assert res.timing_ps > 0 and res.area_um2 > 0 and res.power_mw > 0


class TestScaling:
    def test_table12_conversion(self):
        """65nm -> 15nm must reproduce the paper's Table 12 scaled row."""
        scaled = scale_result(timing_ps=1020.0, area_um2=846563.0, power_mw=132.0,
                              from_nm=65, to_nm=15)
        assert scaled.timing_ps == pytest.approx(330.0, rel=0.02)
        assert scaled.area_um2 == pytest.approx(97302.0, rel=0.02)
        assert scaled.power_mw == pytest.approx(65.90, rel=0.02)

    def test_identity_scaling(self):
        assert scale_value(42.0, "area", 65, 65) == pytest.approx(42.0)

    def test_scaling_down_shrinks_everything(self):
        s = scale_result(1000.0, 1000.0, 100.0, from_nm=90, to_nm=15)
        assert s.timing_ps < 1000 and s.area_um2 < 1000 and s.power_mw < 100

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            scale_value(1.0, "area", 65, 3)

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            scale_value(1.0, "volume", 65, 15)

    def test_round_trip(self):
        v = scale_value(scale_value(7.0, "power", 65, 15), "power", 15, 65)
        assert v == pytest.approx(7.0)
