"""Tests for the Verilog preprocessor."""

import pytest

from repro.graphir import token_counts
from repro.verilog import PreprocessorError, elaborate_source, preprocess


class TestDefine:
    def test_simple_macro(self):
        out = preprocess("`define W 16\nwire [`W-1:0] x;")
        assert "wire [16-1:0] x;" in out

    def test_define_without_value_is_one(self):
        out = preprocess("`define FLAG\n`FLAG")
        assert out.strip() == "1"

    def test_undef(self):
        src = "`define A 1\n`undef A\n`ifdef A\nyes\n`endif\nafter"
        out = preprocess(src)
        assert "yes" not in out and "after" in out

    def test_macro_expands_recursively(self):
        out = preprocess("`define A `B\n`define B 42\n`A")
        assert out.strip() == "42"

    def test_self_referential_macro_rejected(self):
        with pytest.raises(PreprocessorError, match="deep"):
            preprocess("`define A `A\n`A")

    def test_undefined_macro_rejected(self):
        with pytest.raises(PreprocessorError, match="undefined macro"):
            preprocess("wire x = `GHOST;")

    def test_function_like_macro_rejected(self):
        with pytest.raises(PreprocessorError, match="function-like"):
            preprocess("`define MAX(a,b) ((a)>(b)?(a):(b))")

    def test_external_defines(self):
        out = preprocess("`W", defines={"W": "8"})
        assert out.strip() == "8"


class TestConditionals:
    SRC = "`ifdef FPGA\nfpga_code\n`else\nasic_code\n`endif"

    def test_ifdef_taken(self):
        out = preprocess(self.SRC, defines={"FPGA": "1"})
        assert "fpga_code" in out and "asic_code" not in out

    def test_ifdef_not_taken(self):
        out = preprocess(self.SRC)
        assert "asic_code" in out and "fpga_code" not in out

    def test_ifndef(self):
        out = preprocess("`ifndef X\nno_x\n`endif")
        assert "no_x" in out

    def test_nested(self):
        src = ("`define A 1\n`ifdef A\n`ifdef B\nboth\n`else\nonly_a\n"
               "`endif\n`endif")
        out = preprocess(src)
        assert "only_a" in out and "both" not in out

    def test_defines_inside_untaken_branch_ignored(self):
        src = "`ifdef NOPE\n`define W 99\n`endif\n`ifdef W\nyes\n`endif\nend"
        out = preprocess(src)
        assert "yes" not in out

    def test_unmatched_else(self):
        with pytest.raises(PreprocessorError, match="unmatched `else"):
            preprocess("`else")

    def test_unmatched_endif(self):
        with pytest.raises(PreprocessorError, match="unmatched `endif"):
            preprocess("`endif")

    def test_unterminated_ifdef(self):
        with pytest.raises(PreprocessorError, match="unterminated"):
            preprocess("`ifdef A\nx")


class TestInclude:
    def test_include_resolves_relative(self, tmp_path):
        (tmp_path / "widths.vh").write_text("`define W 32\n")
        top = tmp_path / "top.v"
        top.write_text('`include "widths.vh"\nwire [`W-1:0] bus;\n')
        out = preprocess(top.read_text(), _origin=top)
        assert "wire [32-1:0] bus;" in out

    def test_include_search_paths(self, tmp_path):
        inc_dir = tmp_path / "inc"
        inc_dir.mkdir()
        (inc_dir / "common.vh").write_text("`define OK 1\n")
        out = preprocess('`include "common.vh"\n`OK',
                         include_paths=[str(inc_dir)])
        assert out.strip().endswith("1")

    def test_missing_include(self):
        with pytest.raises(PreprocessorError, match="cannot find include"):
            preprocess('`include "nothing.vh"')

    def test_circular_include(self, tmp_path):
        a = tmp_path / "a.vh"
        b = tmp_path / "b.vh"
        a.write_text('`include "b.vh"\n')
        b.write_text('`include "a.vh"\n')
        with pytest.raises(PreprocessorError, match="circular"):
            preprocess(a.read_text(), _origin=a)


class TestEndToEnd:
    def test_parameterized_design_via_macros(self):
        src = """
        `define WIDTH 16
        module m(input clk, input [`WIDTH-1:0] a, input [`WIDTH-1:0] b,
                 output [`WIDTH-1:0] y);
          reg [`WIDTH-1:0] acc;
          always @(posedge clk) acc <= acc + a * b;
          assign y = acc;
        endmodule
        """
        counts = token_counts(elaborate_source(src))
        assert counts["dff16"] == 1
        assert counts["mul32"] == 1

    def test_ifdef_selects_implementation(self):
        src = """
        module m(input [7:0] a, input [7:0] b, input clk, output [15:0] y);
          reg [15:0] r;
        `ifdef USE_MUL
          always @(posedge clk) r <= a * b;
        `else
          always @(posedge clk) r <= a + b;
        `endif
          assign y = r;
        endmodule
        """
        plain = token_counts(elaborate_source(src))
        with_mul = token_counts(elaborate_source(src, defines={"USE_MUL": "1"}))
        assert "mul16" not in plain and plain["add8"] == 1
        assert with_mul["mul16"] == 1
