"""Tests for the hardware design dataset (Table 3)."""

import pytest

from repro.designs import (
    AESRound,
    ArianeCore,
    Convolution2D,
    FFTPipeline,
    FPUnit,
    GEMMUnit,
    GPIOController,
    GemminiSystolicArray,
    HwachaVectorUnit,
    IceNetNIC,
    LookupTable,
    MergeSortNetwork,
    NVDLAConvCore,
    PiecewiseApprox,
    RadixSortUnit,
    RocketCore,
    SIMDALU,
    SPMVUnit,
    Sha3Round,
    SodorCore,
    Stencil2DAccelerator,
    ViterbiDecoder,
    design_families,
    get_design,
    standard_designs,
)
from repro.graphir import token_counts
from repro.synth import Synthesizer

ALL_GENERATORS = [
    SodorCore(), RocketCore(), ArianeCore(),
    IceNetNIC(), GPIOController(),
    GemminiSystolicArray(dim=4), NVDLAConvCore(atoms=8),
    SIMDALU(lanes=2), HwachaVectorUnit(lanes=1),
    FFTPipeline(points=8), Convolution2D(),
    AESRound(), Sha3Round(),
    GEMMUnit(rows=2, cols=2), SPMVUnit(lanes=2),
    MergeSortNetwork(n=4), RadixSortUnit(buckets=4),
    LookupTable(entries=16), PiecewiseApprox(segments=4),
    FPUnit(), Stencil2DAccelerator(cores=1, unroll=1), ViterbiDecoder(states=4),
]


@pytest.mark.parametrize("module", ALL_GENERATORS, ids=lambda m: type(m).__name__)
def test_every_generator_elaborates_validly(module):
    g = module.elaborate()
    g.validate()
    assert g.num_nodes > 0
    assert g.num_edges > 0
    assert len(g.sequential_ids()) >= 1


@pytest.mark.parametrize("module", ALL_GENERATORS, ids=lambda m: type(m).__name__)
def test_every_generator_synthesizes(module):
    result = Synthesizer(effort="low").synthesize(module.elaborate())
    assert result.timing_ps > 0
    assert result.area_um2 > 0
    assert result.power_mw > 0


class TestRegistry:
    def test_exactly_41_designs(self):
        assert len(standard_designs()) == 41

    def test_names_unique(self):
        names = [e.name for e in standard_designs()]
        assert len(set(names)) == 41

    def test_all_table3_categories_present(self):
        categories = {e.category for e in standard_designs()}
        assert categories == {
            "Processor Core", "Peripheral Component", "Machine Learning Acc.",
            "Vector Arithmetic", "Signal Processing", "Cryptographic Arithmetic",
            "Linear Algebra", "Sort", "Non-linear Function Approximation", "Other",
        }

    def test_families_group_parameter_sweeps(self):
        families = design_families()
        assert len(families["rocket"]) == 3
        assert len(families["gemmini"]) == 3
        for entries in families.values():
            assert len({e.name for e in entries}) == len(entries)

    def test_get_design(self):
        entry = get_design("lut128x8")
        assert entry.category == "Non-linear Function Approximation"
        with pytest.raises(KeyError):
            get_design("nonexistent")

    def test_size_spread_spans_orders_of_magnitude(self):
        """Figure 7: designs range from a tiny LUT to a multi-M-gate stencil."""
        lib = Synthesizer().library
        small = get_design("gpio16").module.elaborate()
        big = get_design("stencil16").module.elaborate()
        small_gates = sum(lib.gate_count(n.node_type, n.width) for n in small.nodes())
        big_gates = sum(lib.gate_count(n.node_type, n.width) for n in big.nodes())
        assert big_gates > 1000 * small_gates
        assert big_gates > 5e6  # multi-million-gate flagship


class TestParameterSensitivity:
    """Bigger parameters must produce bigger hardware (DSE prerequisite)."""

    def _gates(self, module):
        lib = Synthesizer().library
        g = module.elaborate()
        return sum(lib.gate_count(n.node_type, n.width) for n in g.nodes())

    def test_gemmini_scales_quadratically_with_dim(self):
        g8 = self._gates(GemminiSystolicArray(dim=8))
        g16 = self._gates(GemminiSystolicArray(dim=16))
        assert 3.0 < g16 / g8 < 5.0

    def test_simd_scales_with_lanes(self):
        assert self._gates(SIMDALU(lanes=8)) > 1.8 * self._gates(SIMDALU(lanes=4))

    def test_lut_scales_with_entries(self):
        assert self._gates(LookupTable(entries=128)) > 3 * self._gates(LookupTable(entries=32))

    def test_fft_scales_with_points(self):
        assert self._gates(FFTPipeline(points=32)) > 2 * self._gates(FFTPipeline(points=16))

    def test_wider_rocket_is_bigger(self):
        assert self._gates(RocketCore(xlen=64)) > self._gates(RocketCore(xlen=32))

    def test_fp32_costs_more_than_bf16(self):
        fp32 = self._gates(FPUnit(exp_w=8, man_w=24))
        bf16 = self._gates(FPUnit(exp_w=8, man_w=8))
        assert fp32 > 2 * bf16


class TestDesignStructure:
    def test_aes_rounds_stack(self):
        g1 = AESRound(rounds=1).elaborate()
        g2 = AESRound(rounds=2).elaborate()
        assert 1.8 < g2.num_nodes / g1.num_nodes < 2.3

    def test_sha3_has_64bit_state_registers(self):
        counts = token_counts(Sha3Round().elaborate())
        assert counts["dff64"] == 25  # 5x5 lanes

    def test_mergesort_has_compare_exchange_pairs(self):
        counts = token_counts(MergeSortNetwork(n=8, width=16).elaborate())
        assert counts["lgt16"] > 0
        assert counts["mux16"] >= 2 * counts["lgt16"]  # two muxes per exchange

    def test_gemm_accumulators_match_tile(self):
        counts = token_counts(GEMMUnit(rows=3, cols=5, depth=4, width=16).elaborate())
        assert counts["mul64"] + counts["mul32"] == 3 * 5 * 4

    def test_viterbi_has_acs_structure(self):
        counts = token_counts(ViterbiDecoder(states=8).elaborate())
        assert counts["dff16"] >= 8  # path metrics
        assert counts["lgt16"] >= 8  # compare-selects
