"""Tests for Verilog generate-for unrolling."""

import pytest

from repro.graphir import token_counts
from repro.synth import Synthesizer
from repro.verilog import ElaborationError, VerilogSyntaxError, elaborate_source, parse_source


SIMD_XOR = """
module lanes #(parameter N = 4) (
    input [31:0] a, input [31:0] b, input clk, output [31:0] y
);
  genvar i;
  wire [31:0] partial;
  generate
    for (i = 0; i < N; i = i + 1) begin : lane
      wire [7:0] la;
      wire [7:0] lb;
      assign la = a >> (8 * i);
      assign lb = b >> (8 * i);
      assign partial = (la ^ lb) << (8 * i);
    end
  endgenerate
  reg [31:0] r;
  always @(posedge clk) r <= partial;
  assign y = r;
endmodule
"""


class TestParsing:
    def test_generate_block_parsed(self):
        module = parse_source(SIMD_XOR).module("lanes")
        assert len(module.generates) == 1
        gen = module.generates[0]
        assert gen.genvar == "i"
        assert gen.label == "lane"
        assert len(gen.assigns) == 3
        assert len(gen.nets) == 2

    def test_condition_must_test_genvar(self):
        with pytest.raises(VerilogSyntaxError, match="genvar"):
            parse_source("""
            module m(output y);
              genvar i;
              generate
                for (i = 0; j < 4; i = i + 1) begin : g
                end
              endgenerate
              assign y = 0;
            endmodule
            """)


class TestUnrolling:
    def test_iteration_count_scales_hardware(self):
        g2 = elaborate_source(SIMD_XOR.replace("N = 4", "N = 2"))
        g8 = elaborate_source(SIMD_XOR.replace("N = 4", "N = 8"))
        c2, c8 = token_counts(g2), token_counts(g8)
        assert c8["xor8"] == 8 and c2["xor8"] == 2

    def test_genvar_becomes_constant(self):
        """8*i shifts are constant shifts — sh vertices appear only for
        the data shifts, not genvar arithmetic."""
        graph = elaborate_source(SIMD_XOR)
        counts = token_counts(graph)
        assert counts["xor8"] == 4

    def test_local_names_isolated_per_iteration(self):
        """Each iteration's `la` is a distinct net — no cross-iteration
        merging (would collapse the xor count)."""
        counts = token_counts(elaborate_source(SIMD_XOR))
        assert counts["xor8"] == 4

    def test_multi_driver_net_joined(self):
        """`partial` has one driver per iteration; they join like concat."""
        graph = elaborate_source(SIMD_XOR)
        counts = token_counts(graph)
        # N-1 joins of the per-lane slices (at the slice width).
        assert counts["or8"] >= 3

    def test_generated_instances(self):
        src = """
        module leaf(input [7:0] x, output [7:0] y);
          assign y = x * x;
        endmodule
        module top #(parameter N = 3) (input [7:0] a, output [7:0] o);
          wire [7:0] acc;
          genvar k;
          generate
            for (k = 0; k < N; k = k + 1) begin : inst
              wire [7:0] part;
              leaf u (.x(a), .y(part));
              assign acc = part;
            end
          endgenerate
          assign o = acc;
        endmodule
        """
        counts = token_counts(elaborate_source(src))
        assert counts["mul16"] == 3  # one per generated instance

    def test_generated_registers(self):
        src = """
        module pipe(input clk, input [15:0] d, output [15:0] q);
          genvar s;
          wire [15:0] merged;
          generate
            for (s = 0; s < 4; s = s + 1) begin : stage
              reg [15:0] r;
              always @(posedge clk) r <= d + s;
              assign merged = r;
            end
          endgenerate
          assign q = merged;
        endmodule
        """
        counts = token_counts(elaborate_source(src))
        assert counts["dff16"] == 4

    def test_step_must_be_positive(self):
        src = SIMD_XOR.replace("i = i + 1", "i = i + 0")
        with pytest.raises(ElaborationError, match="positive"):
            elaborate_source(src)

    def test_unroll_bound(self):
        src = SIMD_XOR.replace("N = 4", "N = 100000")
        with pytest.raises(ElaborationError, match="unrolls past"):
            elaborate_source(src)

    def test_parameter_override_reaches_generate(self):
        src = SIMD_XOR + """
        module wrap(input [31:0] a, input [31:0] b, input clk, output [31:0] y);
          lanes #(.N(6)) u (.a(a), .b(b), .clk(clk), .y(y));
        endmodule
        """
        counts = token_counts(elaborate_source(src, top="wrap"))
        assert counts["xor8"] == 6

    def test_synthesizes_end_to_end(self):
        result = Synthesizer(effort="low").synthesize(elaborate_source(SIMD_XOR))
        assert result.area_um2 > 0 and result.timing_ps > 0
