"""Tests for the compiled plan-once/run-many executor (``repro.nn.executor``).

Covers the executor's contracts end to end:

- **fp64 parity** — compiled forward and train-step plans replay
  bit-identically to the dynamic autograd engine, on the trace inputs
  and on fresh inputs, including the dropout RNG stream;
- **Reduced precision** — fp32/int8 plans pass the compile-time
  tolerance gate and stay within the documented error bounds; the int8
  path actually quantizes the embedding tables and requantizes after
  in-place weight updates;
- **Model/engine wiring** — ``CircuitformerExecutor`` matches
  ``predict_unique`` bitwise across buckets and thread counts (the
  bucket-parallel merge equals the serial schedule), and executor
  training in :class:`~repro.runtime.trainer.TrainingEngine` reproduces
  the dynamic fused run's losses and weights exactly at fp64;
- **Safety rails** — staleness detection on parameter rebinds, the
  no-grad guard on replay, and the train-time precision restrictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.circuitformer import Circuitformer, CircuitformerConfig
from repro.core.training import TrainingConfig
from repro.datagen.dataset import PathRecord
from repro.runtime.trainer import TrainingEngine

TINY_CF = CircuitformerConfig(hidden_layers=1, embedding_size=16,
                              dim_feedforward=32, max_input_size=64)


class SmokeModel(nn.Module):
    """Embedding + dropout + linear + softmax mix hitting most op kinds."""

    def __init__(self, vocab=11, dim=8, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.emb = nn.Embedding(vocab, dim, rng=rng)
        self.lin = nn.Linear(dim, dim, rng=rng)
        self.drop = nn.Dropout(0.25, rng=np.random.default_rng(seed + 1))
        self.out = nn.Linear(dim, 3, rng=rng)

    def forward(self, ids, pad_mask):
        x = self.emb(ids)
        h = self.lin(x).relu()
        h = h.masked_fill(np.broadcast_to(pad_mask[:, :, None], h.shape), 0.0)
        h = self.drop(h)
        w = h.sum(axis=-1).softmax(axis=-1)
        pooled = (h * w.reshape(*w.shape, 1)).sum(axis=1)
        return self.out(pooled)


def smoke_inputs(rng, batch=4, seq=6, vocab=11):
    ids = rng.integers(0, vocab, size=(batch, seq))
    pad_mask = rng.random((batch, seq)) < 0.3
    return ids.astype(np.int64), pad_mask


class TestForwardPlan:
    def test_fp64_replay_is_bitwise_on_fresh_inputs(self):
        model = SmokeModel()
        model.eval()
        rng = np.random.default_rng(0)
        ids, mask = smoke_inputs(rng)
        with nn.no_grad():
            plan = nn.compile_forward(model.forward,
                                      {"ids": ids, "pad_mask": mask})
            for _ in range(3):
                ids2, mask2 = smoke_inputs(rng)
                got = plan.replay(ids=ids2, pad_mask=mask2)
                ref = model.forward(ids2, mask2).numpy()
                assert np.array_equal(got, ref)
        assert plan.gate_error == 0.0
        assert plan.replays >= 3

    def test_replay_requires_no_grad(self):
        model = SmokeModel()
        model.eval()
        ids, mask = smoke_inputs(np.random.default_rng(1))
        with nn.no_grad():
            plan = nn.compile_forward(model.forward,
                                      {"ids": ids, "pad_mask": mask})
        with pytest.raises(RuntimeError, match="no_grad"):
            plan.replay(ids=ids, pad_mask=mask)

    def test_wrong_inputs_rejected(self):
        model = SmokeModel()
        model.eval()
        ids, mask = smoke_inputs(np.random.default_rng(2))
        with nn.no_grad():
            plan = nn.compile_forward(model.forward,
                                      {"ids": ids, "pad_mask": mask})
            with pytest.raises(nn.ExecutorError, match="inputs"):
                plan.replay(ids=ids)
            with pytest.raises(nn.ExecutorError, match="shape"):
                plan.replay(ids=ids[:2], pad_mask=mask[:2])

    def test_fp64_staleness_on_param_rebind(self):
        model = SmokeModel()
        model.eval()
        ids, mask = smoke_inputs(np.random.default_rng(3))
        with nn.no_grad():
            plan = nn.compile_forward(model.forward,
                                      {"ids": ids, "pad_mask": mask})
            assert not plan.is_stale()
            p = model.lin.weight
            p.data = np.asarray(p.data).copy()  # rebind, not in-place write
            assert plan.is_stale()
            with pytest.raises(nn.ExecutorError, match="stale"):
                plan.replay(ids=ids, pad_mask=mask)

    def test_fp64_tracks_inplace_weight_updates(self):
        # Fused optimizers write parameters in place; fp64 plans alias
        # the storage, so replays must see the new weights with no
        # recompile and stay bitwise-equal to the dynamic path.
        model = SmokeModel()
        model.eval()
        ids, mask = smoke_inputs(np.random.default_rng(4))
        with nn.no_grad():
            plan = nn.compile_forward(model.forward,
                                      {"ids": ids, "pad_mask": mask})
            np.subtract(model.lin.weight.data, 0.01,
                        out=model.lin.weight.data)
            got = plan.replay(ids=ids, pad_mask=mask)
            ref = model.forward(ids, mask).numpy()
        assert np.array_equal(got, ref)


class TestReducedPrecision:
    def test_fp32_within_tolerance(self):
        model = SmokeModel()
        model.eval()
        rng = np.random.default_rng(5)
        ids, mask = smoke_inputs(rng)
        with nn.no_grad():
            plan = nn.compile_forward(model.forward,
                                      {"ids": ids, "pad_mask": mask},
                                      precision="fp32")
            assert plan.gate_error <= nn.DEFAULT_TOLERANCES["fp32"]
            ids2, mask2 = smoke_inputs(rng)
            got = plan.replay(ids=ids2, pad_mask=mask2)
            ref = model.forward(ids2, mask2).numpy()
        assert got.dtype == np.float32
        assert nn.max_relative_error(got, ref) <= nn.DEFAULT_TOLERANCES["fp32"]

    def test_fp32_impossible_tolerance_raises(self):
        model = SmokeModel()
        model.eval()
        ids, mask = smoke_inputs(np.random.default_rng(6))
        with nn.no_grad(), pytest.raises(nn.PrecisionToleranceError):
            nn.compile_forward(model.forward, {"ids": ids, "pad_mask": mask},
                               precision="fp32", tolerance=0.0)

    def test_int8_quantizes_embeddings_and_requantizes_on_update(self):
        model = SmokeModel()
        model.eval()
        ids, mask = smoke_inputs(np.random.default_rng(7))
        cache: dict = {}
        with nn.no_grad():
            plan = nn.compile_forward(model.forward,
                                      {"ids": ids, "pad_mask": mask},
                                      precision="int8", cast_cache=cache)
            kinds = {k[0] for k in cache}
            assert "int8" in kinds  # the embedding gather went quantized
            ref = model.forward(ids, mask).numpy()
            got = plan.replay(ids=ids, pad_mask=mask).copy()
            assert nn.max_relative_error(got, ref) <= nn.DEFAULT_TOLERANCES["int8"]
            # In-place update bumps Parameter.version -> prologue requantizes.
            np.multiply(model.emb.weight.data, 1.5, out=model.emb.weight.data)
            got2 = plan.replay(ids=ids, pad_mask=mask)
            ref2 = model.forward(ids, mask).numpy()
            assert nn.max_relative_error(got2, ref2) <= nn.DEFAULT_TOLERANCES["int8"]
            assert not np.array_equal(got, got2)

    def test_int8_training_rejected(self):
        model = SmokeModel()
        model.train()
        ids, mask = smoke_inputs(np.random.default_rng(8))
        target = np.zeros((len(ids), 3))
        with pytest.raises(nn.ExecutorError, match="int8"):
            nn.compile_train_step(
                lambda ids, pad_mask, target:
                    nn.mse_loss(model.forward(ids, pad_mask), target),
                {"ids": ids, "pad_mask": mask, "target": target},
                precision="int8")


class TestTrainStepPlan:
    def test_fp64_step_matches_dynamic_including_rng(self):
        def build():
            return SmokeModel(seed=3)

        rng = np.random.default_rng(9)
        batches = [smoke_inputs(rng) for _ in range(4)]
        targets = [rng.normal(size=(4, 3)) for _ in range(4)]

        # Dynamic oracle: fused Adam over the four batches.
        m_dyn = build()
        m_dyn.train()
        opt = nn.Adam(m_dyn.parameters(), lr=0.01)
        dyn_losses = []
        for (ids, mask), tgt in zip(batches, targets):
            opt.zero_grad()
            loss = nn.mse_loss(m_dyn.forward(ids, mask), tgt)
            loss.backward(free_graph=True)
            opt.step(max_grad_norm=5.0)
            dyn_losses.append(loss.item())

        # Compiled: the compile IS step one, plan.step covers the rest.
        m_ex = build()
        m_ex.train()
        opt = nn.Adam(m_ex.parameters(), lr=0.01)
        opt.zero_grad()
        (ids, mask), tgt = batches[0], targets[0]
        plan, loss0 = nn.compile_train_step(
            lambda ids, pad_mask, target:
                nn.mse_loss(m_ex.forward(ids, pad_mask), target),
            {"ids": ids, "pad_mask": mask, "target": tgt})
        opt.step(max_grad_norm=5.0)
        ex_losses = [loss0]
        for (ids, mask), tgt in zip(batches[1:], targets[1:]):
            ex_losses.append(plan.step(ids=ids, pad_mask=mask, target=tgt))
            opt.step(max_grad_norm=5.0)

        assert ex_losses == dyn_losses
        for p_dyn, p_ex in zip(m_dyn.parameters(), m_ex.parameters()):
            assert np.array_equal(np.asarray(p_dyn.data), np.asarray(p_ex.data))

    def test_requires_grad_enabled(self):
        model = SmokeModel()
        ids, mask = smoke_inputs(np.random.default_rng(10))
        with nn.no_grad(), pytest.raises(nn.ExecutorError, match="grad"):
            nn.compile_train_step(
                lambda ids, pad_mask, target:
                    nn.mse_loss(model.forward(ids, pad_mask), target),
                {"ids": ids, "pad_mask": mask, "target": np.zeros((4, 3))})


def _make_seqs(vocab, n=33, seed=11, max_len=45):
    rng = np.random.default_rng(seed)
    toks = [vocab.token_of(i) for i in range(2, 20)]
    seqs = []
    for _ in range(n):
        length = int(rng.integers(1, max_len))
        seqs.append(tuple(rng.choice(toks, size=length)))
    return list(dict.fromkeys(seqs))


class TestCircuitformerExecutor:
    def test_fp64_matches_dynamic_across_buckets(self):
        model = Circuitformer(TINY_CF)
        seqs = _make_seqs(model.vocab)
        ref = model.predict_unique(seqs)
        ex = model.compile_executor()
        got = ex.predict_unique(seqs)
        assert np.array_equal(got, ref)
        # Warm replays (no recompilation) stay bitwise.
        assert np.array_equal(ex.predict_unique(seqs), ref)
        assert ex.stats()["plans"] > 1

    @pytest.mark.parametrize("threads", [2, 8])
    def test_bucket_parallel_equals_serial_bitwise(self, threads):
        model = Circuitformer(TINY_CF)
        seqs = _make_seqs(model.vocab, seed=12)
        serial = model.compile_executor(threads=1).predict_unique(seqs)
        parallel = model.compile_executor(threads=threads).predict_unique(seqs)
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("precision", ["fp32", "int8"])
    def test_reduced_precision_within_tolerance(self, precision):
        model = Circuitformer(TINY_CF)
        seqs = _make_seqs(model.vocab, seed=13)
        ref = model.predict_unique(seqs)
        got = model.compile_executor(precision=precision).predict_unique(seqs)
        # Outputs are physical quantities (inverse-transformed); allow
        # a looser bound than the scaled-space compile gate.
        tol = 0.01 if precision == "fp32" else 0.2
        assert nn.max_relative_error(got, ref) <= tol

    def test_predict_unique_delegates_to_executor(self):
        model = Circuitformer(TINY_CF)
        seqs = _make_seqs(model.vocab, seed=14, n=9)
        ex = model.compile_executor()
        assert np.array_equal(model.predict_unique(seqs, executor=ex),
                              model.predict_unique(seqs))
        other = Circuitformer(TINY_CF, seed=5)
        with pytest.raises(ValueError, match="different model"):
            other.predict_unique(seqs, executor=ex)

    def test_executor_survives_inplace_weight_update(self):
        model = Circuitformer(TINY_CF)
        seqs = _make_seqs(model.vocab, seed=15, n=7)
        ex = model.compile_executor()
        ex.predict_unique(seqs)
        w = model.head.steps[0].weight
        np.add(w.data, 0.01, out=w.data)
        assert np.array_equal(ex.predict_unique(seqs),
                              model.predict_unique(seqs))

    def test_bad_args(self):
        model = Circuitformer(TINY_CF)
        with pytest.raises(ValueError, match="precision"):
            model.compile_executor(precision="fp16")
        with pytest.raises(ValueError, match="threads"):
            model.compile_executor(threads=0)


def _records(vocab, n=36, seed=21):
    rng = np.random.default_rng(seed)
    toks = [vocab.token_of(i) for i in range(2, 20)]
    recs = []
    for _ in range(n):
        length = int(rng.integers(2, 28))
        recs.append(PathRecord(tuple(rng.choice(toks, size=length)),
                               float(rng.uniform(10, 500)),
                               float(rng.uniform(1, 50)),
                               float(rng.uniform(0.01, 2.0))))
    return recs


class TestExecutorTraining:
    def test_fp64_executor_training_is_bitwise(self):
        cfg = TrainingConfig(circuitformer_epochs=2, circuitformer_batch=16,
                             bucketed=True)
        records = _records(Circuitformer(TINY_CF).vocab)

        m_dyn = Circuitformer(TINY_CF, seed=7)
        h_dyn = TrainingEngine(bucketed=True).train_circuitformer(
            m_dyn, records, cfg)

        m_ex = Circuitformer(TINY_CF, seed=7)
        engine = TrainingEngine(bucketed=True, executor=True)
        h_ex = engine.train_circuitformer(m_ex, records, cfg)

        assert [(s.train_loss, s.val_loss) for s in h_dyn] == \
               [(s.train_loss, s.val_loss) for s in h_ex]
        for p_dyn, p_ex in zip(m_dyn.parameters(), m_ex.parameters()):
            assert np.array_equal(np.asarray(p_dyn.data), np.asarray(p_ex.data))
        assert engine.last_profile.phase_seconds["plan_step"] >= 0.0

    def test_fp32_executor_training_close(self):
        cfg = TrainingConfig(circuitformer_epochs=2, circuitformer_batch=16,
                             bucketed=True)
        records = _records(Circuitformer(TINY_CF).vocab, seed=22)

        m_dyn = Circuitformer(TINY_CF, seed=7)
        h_dyn = TrainingEngine(bucketed=True).train_circuitformer(
            m_dyn, records, cfg)
        m_ex = Circuitformer(TINY_CF, seed=7)
        h_ex = TrainingEngine(bucketed=True, executor=True,
                              precision="fp32").train_circuitformer(
            m_ex, records, cfg)
        assert h_ex[-1].train_loss == pytest.approx(h_dyn[-1].train_loss,
                                                    rel=1e-3)

    def test_executor_requires_fused(self):
        with pytest.raises(ValueError, match="fused"):
            TrainingEngine(executor=True, fused=False)

    def test_executor_rejects_int8(self):
        with pytest.raises(ValueError, match="precision"):
            TrainingEngine(executor=True, precision="int8")

    def test_from_config_carries_executor_fields(self):
        cfg = TrainingConfig(bucketed=True, executor=True, precision="fp32")
        engine = TrainingEngine.from_config(cfg)
        assert engine.executor and engine.precision == "fp32"


class TestNoGradHelpers:
    def test_assert_no_grad(self):
        with pytest.raises(RuntimeError, match="no_grad"):
            nn.assert_no_grad("test context")
        with nn.no_grad():
            nn.assert_no_grad("test context")  # no raise

    def test_no_grad_decorator_forms(self):
        @nn.no_grad
        def bare():
            return nn.is_grad_enabled()

        @nn.no_grad()
        def called():
            return nn.is_grad_enabled()

        assert bare() is False and called() is False
        assert nn.is_grad_enabled() is True
