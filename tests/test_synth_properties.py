"""Property-based tests for reference-synthesizer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphir import CircuitGraph
from repro.synth import (
    FREEPDK15,
    MappedNetlist,
    Synthesizer,
    common_subexpression_elimination,
    mac_fusion,
    static_timing_analysis,
    total_area,
)

COMB_TYPES = ["add", "mul", "xor", "and", "or", "mux", "sh", "eq"]


def random_pipeline_graph(rng: np.random.Generator, n_layers: int,
                          layer_width: int) -> CircuitGraph:
    """A layered DAG: io sources -> comb layers -> dff sinks."""
    g = CircuitGraph("random")
    prev = [g.add_node("io", int(rng.choice([8, 16, 32]))) for _ in range(layer_width)]
    for _ in range(n_layers):
        layer = []
        for _ in range(layer_width):
            t = COMB_TYPES[rng.integers(len(COMB_TYPES))]
            node = g.add_node(t, int(rng.choice([8, 16, 32])))
            # connect to 1-2 random nodes in the previous layer
            for src in rng.choice(prev, size=min(2, len(prev)), replace=False):
                g.add_edge(int(src), node)
            layer.append(node)
        prev = layer
    for node in prev:
        sink = g.add_node("dff", 16)
        g.add_edge(node, sink)
    return g


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 4), st.integers(1, 4))
def test_property_synthesis_always_terminates_positive(seed, layers, width):
    g = random_pipeline_graph(np.random.default_rng(seed), layers, width)
    result = Synthesizer(effort="low").synthesize(g)
    assert result.timing_ps > 0
    assert result.area_um2 > 0
    assert result.power_mw > 0


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_cse_never_increases_area(seed):
    g = random_pipeline_graph(np.random.default_rng(seed), 3, 3)
    before = MappedNetlist.from_graphir(g)
    after = MappedNetlist.from_graphir(g)
    common_subexpression_elimination(after)
    assert total_area(after, FREEPDK15) <= total_area(before, FREEPDK15) + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_property_timing_aware_mac_fusion_never_increases_cost(seed):
    g = random_pipeline_graph(np.random.default_rng(seed), 3, 3)
    before = MappedNetlist.from_graphir(g)
    after = MappedNetlist.from_graphir(g)
    mac_fusion(after, library=FREEPDK15)
    assert total_area(after, FREEPDK15) <= total_area(before, FREEPDK15) + 1e-9
    t_before = static_timing_analysis(before, FREEPDK15).critical_path_ps
    t_after = static_timing_analysis(after, FREEPDK15).critical_path_ps
    assert t_after <= t_before + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_unconditional_fusion_never_increases_area(seed):
    """Without a library the pass still never grows area (MAC < mul+add)."""
    g = random_pipeline_graph(np.random.default_rng(seed), 3, 3)
    before = MappedNetlist.from_graphir(g)
    after = MappedNetlist.from_graphir(g)
    mac_fusion(after)
    assert total_area(after, FREEPDK15) <= total_area(before, FREEPDK15) + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_property_sta_monotone_under_edges(seed):
    """Adding a combinational dependency never shortens the critical path."""
    rng = np.random.default_rng(seed)
    g = random_pipeline_graph(rng, 3, 3)
    net = MappedNetlist.from_graphir(g)
    base = static_timing_analysis(net, FREEPDK15).critical_path_ps

    # Add an edge from a source io to a random combinational cell.
    io_cells = [cid for cid, c in net.cells.items() if c.cell_type == "io"]
    comb_cells = [cid for cid, c in net.cells.items()
                  if not c.is_sequential and c.cell_type != "io"]
    if io_cells and comb_cells:
        net.add_edge(io_cells[0], comb_cells[int(rng.integers(len(comb_cells)))])
        extended = static_timing_analysis(net, FREEPDK15).critical_path_ps
        assert extended >= base - 1e-9


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["add16", "mul16", "xor16", "sh16", "mux16"]),
                min_size=1, max_size=10))
def test_property_path_cost_monotone_in_length(middle):
    """Extending a path never reduces its area or delay."""
    synth = Synthesizer()
    shorter = synth.synthesize_path(["dff16"] + middle + ["dff16"])
    longer = synth.synthesize_path(["dff16"] + middle + ["xor16", "dff16"])
    assert longer.area_um2 >= shorter.area_um2
    assert longer.timing_ps >= shorter.timing_ps


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_effort_never_hurts_timing(seed):
    g = random_pipeline_graph(np.random.default_rng(seed), 3, 3)
    low = Synthesizer(effort="low").synthesize(g)
    high = Synthesizer(effort="high").synthesize(g)
    assert high.timing_ps <= low.timing_ps * 1.001


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_property_power_gating_only_reduces(seed):
    g = random_pipeline_graph(np.random.default_rng(seed), 2, 3)
    synth = Synthesizer(effort="low")
    base = synth.synthesize(g)
    gated = synth.synthesize(g, activity={nid: 0.0 for nid in g.sequential_ids()})
    assert gated.power_mw <= base.power_mw + 1e-12
