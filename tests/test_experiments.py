"""Tests for the experiment harnesses (fast preset)."""

import numpy as np
import pytest

from repro.datagen import train_test_split_by_family
from repro.experiments import (
    FAST,
    FULL,
    AccuracyReport,
    PredictionRow,
    build_dataset,
    dsage_timing_comparison,
    evaluate_split,
    fit_sns,
    format_series,
    format_table,
    ascii_scatter,
    run_datatype_sweep,
    run_tn_sweep,
    runtime_comparison,
    strided_subspace,
)
from repro.synth import Synthesizer


@pytest.fixture(scope="module")
def records():
    return build_dataset(FAST)


@pytest.fixture(scope="module")
def trained(records):
    train, test = train_test_split_by_family(records, 0.5, seed=0)
    return fit_sns(train, FAST), train, test


class TestSettings:
    def test_presets_distinct(self):
        assert FAST.sampler_max_paths < FULL.sampler_max_paths
        assert FULL.circuitformer.embedding_size == 128
        assert FAST.augmentation is None and FULL.augmentation is not None

    def test_make_sampler(self):
        sampler = FAST.make_sampler()
        assert sampler.k == FAST.sampler_k
        assert sampler.max_paths == FAST.sampler_max_paths


class TestAccuracyHarness:
    def test_build_dataset_honors_node_cap(self, records):
        assert all(r.graph.num_nodes <= FAST.max_design_nodes for r in records)
        assert len(records) > 20

    def test_evaluate_split_rows(self, trained):
        sns, _, test = trained
        rows = evaluate_split(sns, test[:4])
        assert len(rows) == 4
        for row in rows:
            assert all(v > 0 for v in row.actual)
            assert all(v >= 0 for v in row.predicted)

    def test_report_metrics_finite(self, trained):
        sns, _, test = trained
        report = AccuracyReport.from_rows(evaluate_split(sns, test))
        for target in ("timing", "area", "power"):
            assert np.isfinite(report.rrse[target])
            assert np.isfinite(report.maep[target])

    def test_dsage_comparison_runs(self, records):
        value = dsage_timing_comparison(records, FAST, epochs=5)
        assert np.isfinite(value) and value > 0


class TestRuntimeHarness:
    def test_runtime_rows(self, trained, records):
        sns, _, _ = trained
        report = runtime_comparison(sns, records[:6], synth_effort="low")
        assert len(report.rows) == 6
        for row in report.rows:
            assert row.sns_seconds > 0 and row.synth_seconds > 0
        assert report.average_speedup > 0

    def test_desktop_factor_slows_sns(self, trained, records):
        sns, _, _ = trained
        base = runtime_comparison(sns, records[:3], synth_effort="low")
        slow = runtime_comparison(sns, records[:3], synth_effort="low",
                                  desktop_factor=10.0)
        assert slow.average_speedup < base.average_speedup


class TestCaseStudyHarnesses:
    def test_strided_subspace(self):
        assert len(strided_subspace(1)) == 2592
        assert len(strided_subspace(100)) == 26

    def test_tn_sweep_with_synthesizer(self):
        result = run_tn_sweep(Synthesizer(effort="low"))
        assert sorted(p.config.tn for p in result.points) == [4, 8, 16, 32]

    def test_datatype_sweep_with_synthesizer(self):
        result = run_datatype_sweep(Synthesizer(effort="low"))
        assert len(result.points) == 6
        assert all(0 <= p.accuracy <= 1 for p in result.points)

    def test_engine_type_checked(self):
        with pytest.raises(TypeError):
            run_tn_sweep("not an engine")


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) <= 2  # header/sep/rows aligned

    def test_format_series(self):
        text = format_series("s", [1, 2], [10.0, 20.0], "x", "y")
        assert "s" in text and "->" in text

    def test_ascii_scatter_contains_points(self):
        text = ascii_scatter([1, 10, 100], [1, 10, 100], width=20, height=5)
        assert text.count("*") >= 2

    def test_ascii_scatter_degenerate(self):
        text = ascii_scatter([5.0, 5.0], [5.0, 5.0], width=10, height=3)
        assert "*" in text
