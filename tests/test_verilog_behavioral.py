"""Tests for procedural if/else and case statements in always blocks."""

import pytest

from repro.graphir import token_counts
from repro.synth import Synthesizer
from repro.verilog import elaborate_source, parse_source
from repro.verilog import ast


ENABLED_REG = """
module er(input clk, input en, input [7:0] d, output [7:0] q);
  reg [7:0] r;
  always @(posedge clk)
    if (en) r <= d;
  assign q = r;
endmodule
"""

COUNTER_WITH_RESET = """
module ctr(input clk, input rst, input en, output [15:0] q);
  reg [15:0] count;
  always @(posedge clk) begin
    if (rst)
      count <= 0;
    else if (en)
      count <= count + 1;
  end
  assign q = count;
endmodule
"""

ALU_CASE = """
module alu(input clk, input [1:0] op, input [15:0] a, input [15:0] b,
           output [15:0] y);
  reg [15:0] r;
  always @(posedge clk) begin
    case (op)
      0: r <= a + b;
      1: r <= a - b;
      2: r <= a & b;
      default: r <= a ^ b;
    endcase
  end
  assign y = r;
endmodule
"""


class TestMergeSemantics:
    def test_if_without_else_holds_value(self):
        """`if (en) r <= d;` infers a recirculation mux."""
        blk = parse_source(ENABLED_REG).module("er").always_blocks[0]
        assigns = blk.assigns
        assert len(assigns) == 1
        expr = assigns[0].value
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.if_false, ast.Identifier)
        assert expr.if_false.name == "r"

    def test_last_assignment_wins(self):
        src = """
        module m(input clk, input [7:0] a, output [7:0] q);
          reg [7:0] r;
          always @(posedge clk) begin
            r <= a;
            r <= a + 1;
          end
          assign q = r;
        endmodule
        """
        blk = parse_source(src).module("m").always_blocks[0]
        expr = blk.assigns[0].value
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"

    def test_targets_collected_through_branches(self):
        blk = parse_source(COUNTER_WITH_RESET).module("ctr").always_blocks[0]
        assert blk.targets() == {"count"}


class TestElaboration:
    def test_enable_becomes_mux(self):
        counts = token_counts(elaborate_source(ENABLED_REG))
        assert counts["mux8"] == 1
        assert counts["dff8"] == 1

    def test_reset_enable_counter(self):
        graph = elaborate_source(COUNTER_WITH_RESET)
        counts = token_counts(graph)
        assert counts["dff16"] == 1
        assert counts["add16"] == 1
        assert counts["mux16"] >= 2  # rst mux + en recirculation mux

    def test_case_alu(self):
        counts = token_counts(elaborate_source(ALU_CASE))
        assert counts["add16"] == 2      # a+b and a-b
        assert counts["and16"] == 1
        assert counts["xor16"] == 1
        assert counts["eq8"] >= 2        # op comparisons (2-bit op rounds up)
        assert counts["mux16"] >= 3      # one mux per non-default arm

    def test_nested_if_in_generate(self):
        src = """
        module lanes(input clk, input [3:0] en, input [31:0] d,
                     output [31:0] q);
          wire [31:0] merged;
          genvar i;
          generate
            for (i = 0; i < 4; i = i + 1) begin : lane
              reg [7:0] r;
              always @(posedge clk)
                if (en[i]) r <= d >> (8 * i);
              assign merged = r;
            end
          endgenerate
          assign q = merged;
        endmodule
        """
        counts = token_counts(elaborate_source(src))
        assert counts["dff8"] == 4
        # one enable mux per lane (at the shifted-data width)
        assert counts["mux32"] == 4

    def test_synthesizes(self):
        for src in (ENABLED_REG, COUNTER_WITH_RESET, ALU_CASE):
            result = Synthesizer(effort="low").synthesize(elaborate_source(src))
            assert result.area_um2 > 0

    def test_case_priority_order(self):
        """Earlier case items take priority over later duplicates."""
        src = """
        module p(input clk, input [1:0] op, input [7:0] a, output [7:0] y);
          reg [7:0] r;
          always @(posedge clk)
            case (op)
              0: r <= a + 1;
              0: r <= a + 2;
              default: r <= a;
            endcase
          assign y = r;
        endmodule
        """
        blk = parse_source(src).module("p").always_blocks[0]
        expr = blk.assigns[0].value
        # outermost ternary must test the FIRST item (op == 0 -> a+1)
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.if_true, ast.BinaryOp)
        assert isinstance(expr.if_true.right, ast.Number)
        assert expr.if_true.right.value == 1
