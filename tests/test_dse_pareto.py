"""Tests for the incremental k-objective Pareto front and hypervolume."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import ParetoFront, brute_force_front, hypervolume
from repro.dse.pareto import _dominates


def _front_keys(front: ParetoFront) -> set:
    return {tuple(row) for row in front.minimized()}


def _oracle_keys(points: np.ndarray) -> set:
    mask = brute_force_front(points)
    return {tuple(row) for row in np.asarray(points, dtype=float)[mask]}


class TestDominates:
    def test_strict(self):
        assert _dominates((1.0, 1.0), (2.0, 2.0))

    def test_equal_is_not_domination(self):
        assert not _dominates((1.0, 2.0), (1.0, 2.0))

    def test_tradeoff(self):
        assert not _dominates((1.0, 3.0), (2.0, 2.0))
        assert not _dominates((2.0, 2.0), (1.0, 3.0))

    def test_weak_improvement(self):
        assert _dominates((1.0, 2.0), (1.0, 3.0))


class TestParetoFront:
    def test_requires_two_objectives(self):
        with pytest.raises(ValueError):
            ParetoFront(1)

    def test_wrong_arity_rejected(self):
        front = ParetoFront(2)
        with pytest.raises(ValueError):
            front.add((1.0, 2.0, 3.0))

    def test_maximize_flags_length_checked(self):
        with pytest.raises(ValueError):
            ParetoFront(2, maximize=(True,))

    def test_add_and_evict(self):
        front = ParetoFront(2)
        assert front.add((5.0, 5.0), "a")
        assert front.add((1.0, 9.0), "b")
        assert front.add((9.0, 1.0), "c")
        assert len(front) == 3
        # Dominates "a" only.
        assert front.add((4.0, 4.0), "d")
        assert set(front.items()) == {"b", "d", "c"}

    def test_dominated_candidate_rejected(self):
        front = ParetoFront(2)
        front.add((1.0, 1.0))
        assert not front.add((2.0, 2.0))
        assert front.dominated((2.0, 2.0))
        assert not front.dominated((0.5, 3.0))

    def test_duplicate_keeps_incumbent(self):
        front = ParetoFront(2)
        assert front.add((1.0, 2.0), "first")
        assert not front.add((1.0, 2.0), "second")
        assert front.items() == ["first"]

    def test_items_in_first_objective_order(self):
        front = ParetoFront(2)
        front.add((3.0, 1.0), "c")
        front.add((1.0, 3.0), "a")
        front.add((2.0, 2.0), "b")
        assert front.items() == ["a", "b", "c"]

    def test_maximize_orientation(self):
        # (minimize cost, maximize score).
        front = ParetoFront(2, maximize=(False, True))
        front.add((10.0, 1.0), "cheap-slow")
        front.add((20.0, 2.0), "dear-fast")
        front.add((30.0, 1.5), "dominated")
        assert set(front.items()) == {"cheap-slow", "dear-fast"}
        objs = front.objectives()
        assert objs.shape == (2, 2)
        assert list(objs[:, 0]) == [10.0, 20.0]   # caller's orientation

    def test_empty_front(self):
        front = ParetoFront(3)
        assert not front
        assert len(front) == 0
        assert front.objectives().shape == (0, 3)
        assert front.minimized().shape == (0, 3)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 4), st.integers(1, 60))
    def test_matches_brute_force(self, seed, k, n):
        """Incremental front == O(n^2) dominance filter, any k, any order."""
        rng = np.random.default_rng(seed)
        # Small integer grid so duplicates and ties actually occur.
        points = rng.integers(0, 6, size=(n, k)).astype(float)
        front = ParetoFront(k)
        for row in points:
            front.add(tuple(row))
        assert _front_keys(front) == _oracle_keys(points)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_matches_brute_force_mixed_orientation(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(40, 3))
        maximize = (False, True, False)
        front = ParetoFront(3, maximize=maximize)
        for row in points:
            front.add(tuple(row))
        signs = np.array([1.0, -1.0, 1.0])
        assert _front_keys(front) == _oracle_keys(points * signs)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_insertion_order_invariant(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.integers(0, 5, size=(30, 2)).astype(float)
        a = ParetoFront(2)
        b = ParetoFront(2)
        for row in points:
            a.add(tuple(row))
        for row in points[::-1]:
            b.add(tuple(row))
        assert _front_keys(a) == _front_keys(b)


class TestHypervolume:
    def test_single_point_is_box(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 4.0)) == pytest.approx(6.0)

    def test_two_point_staircase(self):
        # Union of [1,4]x[2,4] and [2,4]x[1,4] = 6 + 6 - 4 = 8.
        pts = [(1.0, 2.0), (2.0, 1.0)]
        assert hypervolume(pts, (4.0, 4.0)) == pytest.approx(8.0)

    def test_three_dimensional_box(self):
        assert hypervolume([(0.0, 0.0, 0.0)], (2.0, 3.0, 4.0)) \
            == pytest.approx(24.0)

    def test_points_beyond_reference_ignored(self):
        pts = [(1.0, 1.0), (5.0, 0.0)]
        assert hypervolume(pts, (2.0, 2.0)) == pytest.approx(1.0)

    def test_empty(self):
        assert hypervolume(np.zeros((0, 2)), (1.0, 1.0)) == 0.0

    def test_front_method_respects_orientation(self):
        front = ParetoFront(2, maximize=(False, True))
        front.add((1.0, 3.0))
        front.add((2.0, 5.0))
        # Internally minimized: (1,-3),(2,-5); ref (4,-1):
        # [1,4]x[-3,-1] u [2,4]x[-5,-1] = 6 + 8 - 4 = 10.
        assert front.hypervolume((4.0, 1.0)) == pytest.approx(10.0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_monte_carlo_agreement(self, seed):
        """Exact sweep matches a Monte Carlo estimate of the dominated set."""
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0.0, 1.0, size=(12, 3))
        pts = raw[brute_force_front(raw)]
        ref = np.ones(3)
        exact = hypervolume(pts, ref)
        samples = rng.uniform(0.0, 1.0, size=(20000, 3))
        dominated = np.zeros(len(samples), dtype=bool)
        for p in pts:
            dominated |= np.all(samples >= p, axis=1)
        assert exact == pytest.approx(dominated.mean(), abs=0.02)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_adding_points_never_shrinks(self, seed):
        rng = np.random.default_rng(seed)
        front = ParetoFront(2)
        ref = (10.0, 10.0)
        last = 0.0
        for row in rng.uniform(0.0, 9.0, size=(25, 2)):
            front.add(tuple(row))
            hv = front.hypervolume(ref)
            assert hv >= last - 1e-12
            last = hv
