"""Tests for the EDA-style synthesis report module."""

import numpy as np
import pytest

from repro.designs import GEMMUnit, SodorCore
from repro.graphir import CircuitGraph
from repro.synth import Synthesizer, analyze


@pytest.fixture(scope="module")
def sodor_report():
    return analyze(SodorCore(xlen=32).elaborate(), num_paths=3)


class TestTimingReport:
    def test_paths_sorted_worst_first(self, sodor_report):
        arrivals = [p.arrival_ps for p in sodor_report.critical_paths]
        assert arrivals == sorted(arrivals, reverse=True)

    def test_worst_path_matches_clock_period(self, sodor_report):
        assert sodor_report.critical_paths[0].arrival_ps == pytest.approx(
            sodor_report.clock_period_ps, rel=1e-6)

    def test_path_cells_have_positive_delay(self, sodor_report):
        for path in sodor_report.critical_paths:
            assert path.depth >= 1
            for cell_type, width, delay in path.cells:
                assert delay > 0
                assert width >= 1

    def test_requested_path_count(self):
        report = analyze(SodorCore(xlen=32).elaborate(), num_paths=5)
        assert 1 <= len(report.critical_paths) <= 5

    def test_breakdown_sums_near_arrival(self, sodor_report):
        """Per-cell delays along a path sum to (at least) its arrival minus
        setup margin."""
        worst = sodor_report.critical_paths[0]
        total = sum(d for _, _, d in worst.cells)
        assert total <= worst.arrival_ps + 1e-6
        assert total >= 0.5 * worst.arrival_ps  # the chain is the bulk of it


class TestAreaReport:
    def test_fractions_sum_to_one(self, sodor_report):
        assert sum(l.fraction for l in sodor_report.area_lines) == pytest.approx(1.0)

    def test_lines_sorted_by_area(self, sodor_report):
        areas = [l.area_um2 for l in sodor_report.area_lines]
        assert areas == sorted(areas, reverse=True)

    def test_total_matches_synthesizer(self):
        graph = SodorCore(xlen=32).elaborate()
        report = analyze(graph)
        # effort-low synthesizer applies the same passes before sizing.
        result = Synthesizer(effort="low").synthesize(graph)
        # sizing perturbs areas slightly; the mapped totals agree closely
        assert report.total_area_um2 == pytest.approx(result.area_um2, rel=0.2)

    def test_arithmetic_dominates_gemm(self):
        report = analyze(GEMMUnit(rows=4, cols=4, depth=4, width=16).elaborate())
        top = report.area_lines[0]
        assert top.category == "arithmetic"
        assert top.fraction > 0.5


class TestPowerReport:
    def test_power_components_nonnegative(self, sodor_report):
        for line in sodor_report.power_lines:
            assert line.dynamic_mw >= 0
            assert line.leakage_mw >= 0

    def test_total_is_sum_of_lines(self, sodor_report):
        total = sum(l.total_mw for l in sodor_report.power_lines)
        assert total == pytest.approx(sodor_report.total_power_mw, rel=1e-9)

    def test_activity_coefficients_reduce_dynamic(self):
        graph = SodorCore(xlen=32).elaborate()
        base = analyze(graph)
        gated = analyze(graph, activity={nid: 0.0 for nid in graph.sequential_ids()})
        base_seq = next(l for l in base.power_lines if l.category == "sequential")
        gated_seq = next(l for l in gated.power_lines if l.category == "sequential")
        assert gated_seq.dynamic_mw < base_seq.dynamic_mw


class TestFormatting:
    def test_format_contains_sections(self, sodor_report):
        text = sodor_report.format()
        assert "-- timing" in text
        assert "-- area --" in text
        assert "-- power --" in text
        assert "GHz" in text

    def test_format_lists_cells(self, sodor_report):
        text = sodor_report.format()
        # every path cell line carries a delay in ps
        cell_lines = [l for l in text.splitlines() if l.strip().endswith("ps")
                      and "+" in l]
        assert len(cell_lines) >= sodor_report.critical_paths[0].depth
