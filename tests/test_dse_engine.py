"""Tests for the streaming budgeted DSE engine and the lazy grid.

Covers the three guarantees the engine advertises: combinatorial
indexing (no product materialization), exhaustive-mode parity with the
legacy explorer, and determinism — the same seed yields the same
evaluated set and front across repeated runs *and* across chunk sizes.
"""

import itertools

import numpy as np
import pytest

from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig
from repro.datagen import build_design_dataset
from repro.designs import SIMDALU, standard_designs
from repro.dse import (DesignSpaceExplorer, EngineConfig, EngineProfile,
                       EngineResult, ExplorationEngine, ParameterGrid)
from repro.synth import Synthesizer

TINY_CF = CircuitformerConfig(embedding_size=16, dim_feedforward=32,
                              max_input_size=64)


@pytest.fixture(scope="module")
def tiny_sns():
    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs() if e.name in ("gpio16", "conv3x3")]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=40, seed=0),
              circuitformer_config=TINY_CF,
              training_config=TrainingConfig(circuitformer_epochs=1,
                                             aggregator_epochs=10),
              num_aggregators=1)
    sns.fit(records, synthesizer=synth)
    return sns


def _param_keys(points):
    return sorted(tuple(sorted(p.params.items())) for p in points)


def _metrics(points):
    return sorted((tuple(sorted(p.params.items())), p.timing_ps, p.area_um2,
                   p.power_mw, p.score) for p in points)


# ---------------------------------------------------------------------- #
class TestGridIndexing:
    GRID = ParameterGrid({"a": (1, 2, 3), "b": ("x", "y"), "c": (10, 20)})

    def test_point_at_matches_iteration_order(self):
        for i, point in enumerate(self.GRID):
            assert self.GRID.point_at(i) == point

    def test_index_of_roundtrip(self):
        for i in range(len(self.GRID)):
            assert self.GRID.index_of(self.GRID.point_at(i)) == i

    def test_point_at_out_of_range(self):
        with pytest.raises(IndexError):
            self.GRID.point_at(len(self.GRID))
        with pytest.raises(IndexError):
            self.GRID.point_at(-1)

    def test_index_of_off_grid_value(self):
        with pytest.raises(ValueError):
            self.GRID.index_of({"a": 7, "b": "x", "c": 10})

    def test_decode_indices_matches_point_at(self):
        indices = list(range(len(self.GRID)))
        digits = self.GRID.decode_indices(indices)
        assert digits.shape == (len(self.GRID), 3)
        for i, row in zip(indices, digits):
            point = self.GRID.point_at(i)
            rebuilt = {n: self.GRID.parameters[n][d]
                       for n, d in zip(self.GRID.names, row)}
            assert rebuilt == point

    def test_decode_indices_out_of_range(self):
        with pytest.raises(IndexError):
            self.GRID.decode_indices([0, len(self.GRID)])

    def test_points_at_matches_point_at(self):
        assert self.GRID.points_at([5, 0, 11]) == [
            self.GRID.point_at(5), self.GRID.point_at(0),
            self.GRID.point_at(11)]

    def test_radices_and_names(self):
        assert self.GRID.names == ("a", "b", "c")
        assert self.GRID.radices == (3, 2, 2)


class TestLazySubsetAndSample:
    def test_iter_subset_matches_eager_subset(self):
        grid = ParameterGrid({"n": tuple(range(10)), "m": (0, 1)})
        constraint = lambda p: (p["n"] + p["m"]) % 3 == 0
        assert list(grid.iter_subset(constraint, stride=2)) \
            == grid.subset(constraint, stride=2)

    def test_stride_counts_survivors(self):
        grid = ParameterGrid({"n": tuple(range(10))})
        odd = lambda p: p["n"] % 2 == 1
        # Survivors 1,3,5,7,9; stride 2 keeps every other survivor.
        assert [p["n"] for p in grid.iter_subset(odd, stride=2)] == [1, 5, 9]

    def test_iter_subset_is_lazy(self):
        # ~1.1M points: materializing would be obvious; islice is instant.
        grid = ParameterGrid({c: tuple(range(64)) for c in "abc"})
        first = list(itertools.islice(grid.iter_subset(), 3))
        assert first[0] == {"a": 0, "b": 0, "c": 0}
        assert first[2] == {"a": 0, "b": 0, "c": 2}

    def test_iter_subset_invalid_stride(self):
        with pytest.raises(ValueError):
            next(ParameterGrid({"a": (1,)}).iter_subset(stride=0))

    def test_sample_deterministic_and_distinct(self):
        grid = ParameterGrid({"a": tuple(range(6)), "b": tuple(range(7))})
        s1 = grid.sample(10, seed=3)
        s2 = grid.sample(10, seed=3)
        assert s1 == s2
        keys = {tuple(sorted(p.items())) for p in s1}
        assert len(keys) == 10
        assert grid.sample(10, seed=4) != s1

    def test_sample_covers_grid_when_n_exceeds_total(self):
        grid = ParameterGrid({"a": (1, 2), "b": (3, 4)})
        assert grid.sample_indices(99) == [0, 1, 2, 3]

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": (1,)}).sample_indices(-1)

    def test_sample_huge_grid_is_cheap(self):
        # 10^12-scale product: index-space sampling must not enumerate.
        grid = ParameterGrid({c: tuple(range(100)) for c in "abcdef"})
        assert len(grid) == 10**12
        idx = grid.sample_indices(100, seed=0)
        assert len(set(idx)) == 100
        assert all(0 <= i < len(grid) for i in idx)
        points = grid.points_at(idx[:5])
        assert all(set(p) == set("abcdef") for p in points)


# ---------------------------------------------------------------------- #
class TestEngineParity:
    """Exhaustive mode reproduces the legacy explorer exactly."""

    GRID = ParameterGrid({"lanes": (1, 2, 4), "width": (16, 32)})

    @pytest.fixture(scope="class")
    def pair(self):
        synth = Synthesizer(effort="low")
        engine = ExplorationEngine(SIMDALU, synth, self.GRID,
                                   config=EngineConfig(budget=100, block=4,
                                                       chunk=2, seed=0))
        eresult = engine.explore()
        oracle = DesignSpaceExplorer(SIMDALU, Synthesizer(effort="low")) \
            .explore(self.GRID)
        return eresult, oracle

    def test_same_evaluated_set_and_metrics(self, pair):
        eresult, oracle = pair
        assert _metrics(eresult.points) == _metrics(oracle.points)

    def test_pareto_matches_oracle(self, pair):
        eresult, oracle = pair
        assert _param_keys(eresult.pareto()) == _param_keys(oracle.pareto())

    def test_front_is_brute_force_front(self, pair):
        from repro.dse import brute_force_front

        eresult, _ = pair
        objs = np.array([[p.timing_ps, p.area_um2, p.power_mw, -p.score]
                         for p in eresult.points])
        expected = {tuple(row) for row in objs[brute_force_front(objs)]}
        got = {(p.timing_ps, p.area_um2, p.power_mw, -p.score)
               for p in eresult.front}
        assert got == expected

    def test_profile_counts(self, pair):
        eresult, _ = pair
        prof = eresult.profile
        assert prof.candidates == len(self.GRID)
        assert prof.evaluated == len(self.GRID)
        assert prof.screened_out == 0
        assert prof.peak_live_modules == 1
        assert prof.front_size == len(eresult.front)
        assert eresult.runtime_s > 0

    def test_hypervolume_positive(self, pair):
        eresult, _ = pair
        assert eresult.hypervolume() >= 0.0
        # A shared, strictly-worse reference gives a positive volume.
        ref = [max(p.timing_ps for p in eresult.points) * 2,
               max(p.area_um2 for p in eresult.points) * 2,
               max(p.power_mw for p in eresult.points) * 2,
               min(p.score for p in eresult.points) / 2]
        assert eresult.hypervolume(reference=ref) > 0.0


class TestEngineDeterminism:
    """Same seed => same survivors, across runs AND chunk sizes."""

    GRID = ParameterGrid({"lanes": (1, 2, 3, 4, 6, 8),
                          "width": (8, 16, 24, 32, 48, 64)})

    def _run(self, chunk, seed=7):
        engine = ExplorationEngine(
            SIMDALU, Synthesizer(effort="low"), self.GRID,
            config=EngineConfig(budget=30, predict_budget=16, block=10,
                                chunk=chunk, seed=seed, refit_every=4,
                                min_fit=4))
        return engine.explore()

    def test_repeat_runs_identical(self):
        r1, r2 = self._run(chunk=5), self._run(chunk=5)
        assert _metrics(r1.points) == _metrics(r2.points)
        assert _param_keys(r1.front) == _param_keys(r2.front)

    def test_chunk_size_invariant(self):
        r1, r2, r3 = self._run(chunk=1), self._run(chunk=7), self._run(chunk=64)
        assert _metrics(r1.points) == _metrics(r2.points) == _metrics(r3.points)
        assert _param_keys(r1.front) == _param_keys(r2.front) \
            == _param_keys(r3.front)

    def test_seed_changes_the_sample(self):
        r1, r2 = self._run(chunk=5, seed=7), self._run(chunk=5, seed=8)
        assert _param_keys(r1.points) != _param_keys(r2.points)

    def test_budget_respected(self):
        r = self._run(chunk=5)
        # The seeded stream is budget-sized; guided local search may
        # consider a few extra neighbors beyond it.
        assert r.profile.candidates >= 30
        assert len(r.points) == 16
        assert r.profile.screened_out == r.profile.candidates - 16

    def test_guided_proposals_stay_on_grid(self):
        r = self._run(chunk=5)
        valid = {tuple(sorted(p.items())) for p in self.GRID}
        assert set(_param_keys(r.points)) <= valid


class TestEngineRungsAndErrors:
    GRID = ParameterGrid({"lanes": (1, 2, 4), "width": (16, 32)})

    def test_synth_finalists(self):
        engine = ExplorationEngine(
            SIMDALU, Synthesizer(effort="low"), self.GRID,
            config=EngineConfig(budget=6, synth_budget=2, block=6, chunk=3))
        r = engine.explore()
        assert 1 <= len(r.finalists) <= 2
        assert r.profile.synthesized == len(r.finalists)
        front_keys = set(_param_keys(r.front))
        assert set(_param_keys(r.finalists)) <= front_keys

    def test_explore_overrides(self):
        engine = ExplorationEngine(SIMDALU, Synthesizer(effort="low"),
                                   self.GRID)
        r = engine.explore(budget=3, block=3)
        assert len(r.points) == 3

    def test_engine_type_checked(self):
        with pytest.raises(TypeError):
            ExplorationEngine(SIMDALU, object(), self.GRID)

    def test_empty_result_errors(self):
        empty = EngineResult(points=(), front=(), objectives=("timing_ps",
                                                              "score"),
                             finalists=(), profile=EngineProfile(),
                             runtime_s=0.0)
        with pytest.raises(ValueError, match="no evaluated points"):
            empty.best()
        with pytest.raises(ValueError, match="no evaluated points"):
            empty.pareto()

    @pytest.mark.parametrize("kwargs", [
        {"budget": 0},
        {"predict_budget": 0},
        {"chunk": 0},
        {"block": 0},
        {"warmup_fraction": 1.5},
        {"warmup_fraction": -0.1},
        {"climb_patience": -1},
        {"objectives": ("timing_ps",)},
        {"objectives": ("timing_ps", "bogus")},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)


# ---------------------------------------------------------------------- #
class TestChunkedExplorerStreaming:
    """Satellite: the exhaustive explorer streams factory->predict in
    chunks with identical results and bounded live modules."""

    GRID = ParameterGrid({"lanes": (1, 2, 3, 4), "width": (8, 16, 32)})

    def test_chunked_matches_all_at_once(self, tiny_sns):
        big = DesignSpaceExplorer(SIMDALU, tiny_sns)
        small = DesignSpaceExplorer(SIMDALU, tiny_sns)
        r_big = big.explore(self.GRID, chunk_size=len(self.GRID))
        r_small = small.explore(self.GRID, chunk_size=2)
        assert _metrics(r_big.points) == _metrics(r_small.points)

    def test_peak_live_modules_bounded_by_chunk(self, tiny_sns):
        explorer = DesignSpaceExplorer(SIMDALU, tiny_sns)
        explorer.explore(self.GRID, chunk_size=3)
        assert 0 < explorer.last_peak_live_modules <= 3
        explorer.explore(self.GRID, chunk_size=5)
        assert explorer.last_peak_live_modules <= 5

    def test_invalid_chunk_size(self, tiny_sns):
        explorer = DesignSpaceExplorer(SIMDALU, tiny_sns)
        with pytest.raises(ValueError):
            explorer.explore(self.GRID, chunk_size=0)

    def test_empty_exploration_raises(self):
        explorer = DesignSpaceExplorer(SIMDALU, Synthesizer(effort="low"))
        with pytest.raises(ValueError, match="nothing to explore"):
            explorer.explore(self.GRID, constraint=lambda p: False)

    def test_engine_with_sns_chunk_invariant(self, tiny_sns):
        def run(chunk):
            engine = ExplorationEngine(
                SIMDALU, tiny_sns, self.GRID,
                config=EngineConfig(budget=10, predict_budget=6, block=5,
                                    chunk=chunk, seed=1, refit_every=3,
                                    min_fit=3))
            return engine.explore()

        r1, r2 = run(2), run(12)
        assert _metrics(r1.points) == _metrics(r2.points)
        assert r1.profile.peak_live_modules == 1

    def test_explore_budgeted_wrapper(self, tiny_sns):
        explorer = DesignSpaceExplorer(SIMDALU, tiny_sns)
        r = explorer.explore_budgeted(self.GRID, budget=5, block=5)
        assert isinstance(r, EngineResult)
        assert len(r.points) == 5
