"""Tests for layers, attention, RNNs, optimizers, and serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestLinear:
    def test_shapes(self):
        layer = nn.Linear(4, 7)
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_3d_input(self):
        layer = nn.Linear(4, 7)
        out = layer(Tensor(np.ones((2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_no_bias(self):
        layer = nn.Linear(3, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_learns_identity(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(2, 2, rng=rng)
        opt = nn.Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            x = rng.normal(size=(16, 2))
            loss = nn.mse_loss(layer(Tensor(x)), x)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 6)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_out_of_range_raises(self):
        emb = nn.Embedding(10, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_gradient_reaches_rows(self):
        emb = nn.Embedding(5, 3)
        out = emb(np.array([2, 2]))
        out.sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[2], [2.0, 2.0, 2.0])
        np.testing.assert_allclose(grad[0], 0.0)


class TestLayerNorm:
    def test_output_is_normalized(self):
        ln = nn.LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8)))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradient_flows(self):
        ln = nn.LayerNorm(4)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)), requires_grad=True)
        (ln(x) * ln(x)).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestDropout:
    def test_eval_is_identity(self):
        d = nn.Dropout(0.5)
        d.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_train_scales(self):
        d = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1000,)))
        out = d(x).data
        # kept elements are scaled by 1/keep
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.1

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadSelfAttention(d_model=16, num_heads=2)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 5, 16)))
        assert attn(x).shape == (3, 5, 16)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(d_model=10, num_heads=3)

    def test_padding_mask_blocks_keys(self):
        """Changing a masked position's content must not change outputs."""
        rng = np.random.default_rng(0)
        attn = nn.MultiHeadSelfAttention(d_model=8, num_heads=2, rng=rng)
        attn.eval()
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[False, False, False, True]])
        out1 = attn(Tensor(x), key_padding_mask=mask).data
        x2 = x.copy()
        x2[0, 3] += 100.0
        out2 = attn(Tensor(x2), key_padding_mask=mask).data
        # positions 0..2 attend only to unmasked keys, so they are unchanged
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-9)

    def test_encoder_stack(self):
        enc = nn.TransformerEncoder(num_layers=2, d_model=16, num_heads=2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 6, 16)))
        out = enc(x)
        assert out.shape == (2, 6, 16)
        out.sum().backward()
        for p in enc.parameters():
            assert p.grad is not None

    def test_encoder_learns_to_copy_first_token(self):
        """Tiny end-to-end training sanity check for the transformer stack."""
        rng = np.random.default_rng(0)
        enc = nn.TransformerEncoderLayer(d_model=8, num_heads=2, rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        params = enc.parameters() + head.parameters()
        opt = nn.Adam(params, lr=0.01)
        for _ in range(150):
            x = rng.normal(size=(8, 4, 8))
            target = x[:, 0, 0]
            out = head(enc(Tensor(x))[:, 0, :])
            loss = nn.mse_loss(out.reshape(8), target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.3


class TestGRU:
    def test_shapes(self):
        gru = nn.GRU(input_size=5, hidden_size=7)
        out, h = gru(Tensor(np.random.default_rng(0).normal(size=(2, 4, 5))))
        assert out.shape == (2, 4, 7)
        assert h.shape == (2, 7)

    def test_gradient_flows_through_time(self):
        gru = nn.GRU(3, 4)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 6, 3)), requires_grad=True)
        out, _ = gru(x)
        out.sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[:, 0, :]).sum() > 0  # first step influences output

    def test_learns_running_sign(self):
        rng = np.random.default_rng(0)
        gru = nn.GRU(1, 8, rng=rng)
        head = nn.Linear(8, 1, rng=rng)
        opt = nn.Adam(gru.parameters() + head.parameters(), lr=0.02)
        for _ in range(200):
            x = rng.normal(size=(16, 5, 1))
            target = (x.sum(axis=(1, 2)) > 0).astype(float)
            _, h = gru(Tensor(x))
            pred = head(h).sigmoid().reshape(16)
            loss = nn.binary_cross_entropy(pred, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.45


class TestOptim:
    def _quadratic_min(self, opt_factory, steps=200):
        w = nn.Parameter(np.array([5.0, -3.0]))
        opt = opt_factory([w])
        for _ in range(steps):
            loss = ((w - Tensor(np.array([1.0, 2.0]))) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return w.data

    def test_sgd_converges(self):
        w = self._quadratic_min(lambda p: nn.SGD(p, lr=0.1))
        np.testing.assert_allclose(w, [1.0, 2.0], atol=1e-3)

    def test_sgd_momentum_converges(self):
        w = self._quadratic_min(lambda p: nn.SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(w, [1.0, 2.0], atol=1e-3)

    def test_adam_converges(self):
        w = self._quadratic_min(lambda p: nn.Adam(p, lr=0.1))
        np.testing.assert_allclose(w, [1.0, 2.0], atol=1e-2)

    def test_weight_decay_shrinks(self):
        w = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([w], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            loss = (w * 0.0).sum()  # zero data gradient
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert abs(w.data[0]) < 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        w = nn.Parameter(np.array([3.0, 4.0]))
        (w * w).sum().backward()  # grad = [6, 8], norm 10
        norm = nn.clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(10.0)
        np.testing.assert_allclose(np.linalg.norm(w.grad), 1.0)


class TestLosses:
    def test_mse_zero_when_equal(self):
        x = Tensor(np.ones(5))
        assert nn.mse_loss(x, np.ones(5)).item() == 0.0

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0, 0.0]]))
        loss = nn.cross_entropy(logits, np.array([0]))
        manual = -np.log(np.exp(2) / (np.exp(2) + 2))
        assert loss.item() == pytest.approx(manual, rel=1e-6)

    def test_bce_symmetric(self):
        p = Tensor(np.array([0.7]))
        l1 = nn.binary_cross_entropy(p, np.array([1.0])).item()
        l0 = nn.binary_cross_entropy(Tensor(np.array([0.3])), np.array([0.0])).item()
        assert l1 == pytest.approx(l0, rel=1e-9)

    def test_huber_between_l1_l2(self):
        pred = Tensor(np.array([10.0]))
        target = np.array([0.0])
        h = nn.huber_loss(pred, target, delta=1.0).item()
        assert h == pytest.approx(0.5 + 1.0 * (10.0 - 1.0), rel=1e-3)


class TestModuleContainer:
    def test_named_parameters_nested(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        names = [n for n, _ in model.named_parameters()]
        assert "steps.0.weight" in names
        assert "steps.2.bias" in names

    def test_num_parameters(self):
        model = nn.Linear(10, 5)
        assert model.num_parameters() == 10 * 5 + 5

    def test_state_dict_roundtrip(self, tmp_path):
        m1 = nn.Sequential(nn.Linear(3, 4), nn.Tanh(), nn.Linear(4, 2))
        m2 = nn.Sequential(nn.Linear(3, 4), nn.Tanh(), nn.Linear(4, 2))
        for p in m2.parameters():
            p.data += 1.0  # make them differ
        path = tmp_path / "weights.npz"
        nn.save_module(m1, path)
        nn.load_module(m2, path)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_load_rejects_mismatched_keys(self):
        m = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            m.load_state_dict({"bogus": np.zeros(2)})

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model.steps[0].training
        model.train()
        assert model.steps[0].training

    def test_parameter_version_counts_assignments(self):
        p = nn.Parameter(np.ones(4))
        assert p.version == 0
        p.data = np.zeros(4)
        assert p.version == 1
        p.data -= 0.5  # augmented assignment re-assigns -> bumps too
        assert p.version == 2
        _ = p.data.sum()  # reads do not bump
        assert p.version == 2

    def test_parameter_version_bumps_on_optimizer_step(self):
        w = nn.Parameter(np.array([5.0, -3.0]))
        before = w.version
        loss = (Tensor(np.array([1.0, 1.0])) * w).sum()
        loss.backward()
        nn.SGD([w], lr=0.1).step()
        assert w.version == before + 1

    def test_parameter_version_bumps_on_state_dict_load(self):
        m1, m2 = nn.Linear(2, 2), nn.Linear(2, 2)
        versions = [p.version for p in m2.parameters()]
        m2.load_state_dict(m1.state_dict())
        assert all(p.version == v + 1
                   for p, v in zip(m2.parameters(), versions))

    def test_stack_concat(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        s = nn.stack([a, b], axis=1)
        assert s.shape == (2, 2, 3)
        c = nn.concatenate([a, b], axis=0)
        assert c.shape == (4, 3)
        (s.sum() + c.sum()).backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 3)))
