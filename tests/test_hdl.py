"""Tests for the hardware construction DSL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphir import token_counts
from repro.hdl import (
    Circuit,
    Module,
    adder_tree,
    counter,
    fifo,
    lfsr,
    max_tree,
    mux_tree,
    pipeline,
    priority_arbiter,
    reduce_tree,
    register_file,
    shift_register,
)


class Mac(Module):
    """The paper's Figure 2 running example: 8-bit multiply-accumulate."""

    def __init__(self, width=8):
        super().__init__(width=width)

    def build(self, c):
        w = self.params["width"]
        a = c.input("a", w)
        b = c.input("b", w)
        prod = a * b
        acc = c.reg(prod + prod.resized(2 * w), "acc")
        c.output("out", acc)


class TestSignalOps:
    def setup_method(self):
        self.c = Circuit("t")
        self.a = self.c.input("a", 8)
        self.b = self.c.input("b", 8)

    def test_add_width(self):
        assert (self.a + self.b).width == 8

    def test_mul_width_doubles(self):
        assert (self.a * self.b).width == 16

    def test_mul_width_clamps_at_64(self):
        c = Circuit()
        x = c.input("x", 64)
        assert (x * x).width == 64

    def test_div_keeps_dividend_width(self):
        assert (self.a // self.b).width == 8
        assert (self.a % self.b).width == 8

    def test_compare_is_one_bit(self):
        assert self.a.eq(self.b).width == 1
        assert self.a.lt(self.b).width == 1
        assert self.a.gt(5).width == 1

    def test_compare_node_width_is_operand_width(self):
        eq = self.a.eq(self.b)
        node = self.c.graph.node(eq.node_id)
        assert node.node_type == "eq"
        assert node.width == 8

    def test_reduce_ops(self):
        for red in (self.a.reduce_and(), self.a.reduce_or(), self.a.reduce_xor()):
            assert red.width == 1

    def test_constant_operand_adds_no_node(self):
        before = self.c.graph.num_nodes
        _ = self.a + 3
        assert self.c.graph.num_nodes == before + 1  # only the adder

    def test_bitwise_types(self):
        ops = {"and": self.a & self.b, "or": self.a | self.b,
               "xor": self.a ^ self.b, "not": ~self.a}
        for expected_type, sig in ops.items():
            assert self.c.graph.node(sig.node_id).node_type == expected_type

    def test_shift(self):
        sh = self.a << 2
        assert self.c.graph.node(sh.node_id).node_type == "sh"
        assert sh.width == 8

    def test_resized_is_free(self):
        before = self.c.graph.num_nodes
        r = self.a.resized(16)
        assert r.width == 16
        assert r.node_id == self.a.node_id
        assert self.c.graph.num_nodes == before

    def test_cross_circuit_mixing_raises(self):
        other = Circuit("o")
        x = other.input("x", 8)
        with pytest.raises(ValueError):
            _ = self.a + x


class TestCircuit:
    def test_mux(self):
        c = Circuit()
        sel = c.input("sel", 1)
        a = c.input("a", 8)
        b = c.input("b", 8)
        m = c.mux(sel, a, b)
        assert m.width == 8
        assert c.graph.node(m.node_id).node_type == "mux"
        assert len(c.graph.predecessors(m.node_id)) == 3

    def test_reg_feedback_loop(self):
        c = Circuit()
        a = c.input("a", 8)
        acc = c.reg_declare(8, "acc")
        c.connect_next(acc, acc + a)
        assert len(c.graph.predecessors(acc.node_id)) == 1
        c.finalize()

    def test_connect_next_rejects_plain_reg(self):
        c = Circuit()
        a = c.input("a", 8)
        r = c.reg(a)
        with pytest.raises(ValueError):
            c.connect_next(r, a)

    def test_output_edge(self):
        c = Circuit()
        a = c.input("a", 8)
        out = c.output("y", a)
        assert a.node_id in c.graph.predecessors(out.node_id)


class TestModule:
    def test_mac_elaborates_figure2_shape(self):
        g = Mac(width=8).elaborate()
        counts = token_counts(g)
        assert counts["io8"] == 2
        assert counts["mul16"] == 1
        assert counts["dff16"] == 1

    def test_design_name_includes_params(self):
        assert Mac(width=16).design_name == "mac_width16"

    def test_elaborate_is_deterministic(self):
        g1 = Mac(width=8).elaborate()
        g2 = Mac(width=8).elaborate()
        assert token_counts(g1) == token_counts(g2)
        assert g1.num_edges == g2.num_edges

    def test_abstract_build_raises(self):
        with pytest.raises(NotImplementedError):
            Module().elaborate()


class TestStructures:
    def _inputs(self, c, n, w=8):
        return [c.input(f"i{k}", w) for k in range(n)]

    def test_adder_tree_count(self):
        c = Circuit()
        sigs = self._inputs(c, 8)
        adder_tree(c, sigs)
        assert token_counts(c.graph)["add8"] == 7  # n-1 adders

    def test_adder_tree_odd(self):
        c = Circuit()
        adder_tree(c, self._inputs(c, 5))
        assert token_counts(c.graph)["add8"] == 4

    def test_adder_tree_single_passthrough(self):
        c = Circuit()
        sigs = self._inputs(c, 1)
        out = adder_tree(c, sigs)
        assert out is sigs[0]

    def test_adder_tree_empty_raises(self):
        with pytest.raises(ValueError):
            adder_tree(Circuit(), [])

    def test_mux_tree_count(self):
        c = Circuit()
        sel = c.input("sel", 3)
        mux_tree(c, sel, self._inputs(c, 8))
        assert token_counts(c.graph)["mux8"] == 7

    def test_reduce_tree_ops(self):
        for op, token in [("and", "and8"), ("or", "or8"), ("xor", "xor8")]:
            c = Circuit()
            reduce_tree(c, self._inputs(c, 4), op)
            assert token_counts(c.graph)[token] == 3

    def test_reduce_tree_bad_op(self):
        c = Circuit()
        with pytest.raises(ValueError):
            reduce_tree(c, self._inputs(c, 2), "nand")

    def test_max_tree(self):
        c = Circuit()
        max_tree(c, self._inputs(c, 4))
        counts = token_counts(c.graph)
        assert counts["mux8"] == 3
        assert counts["lgt8"] == 3

    def test_register_file_structure(self):
        c = Circuit()
        wd = c.input("wd", 16)
        wa = c.input("wa", 3)
        ra = c.input("ra", 3)
        register_file(c, wd, wa, ra, depth=8)
        counts = token_counts(c.graph)
        assert counts["dff16"] == 8
        assert counts["eq8"] == 8  # write decode (addr width 3 rounds to 8... node width is max operand width)

    def test_fifo_depth(self):
        c = Circuit()
        d = c.input("d", 8)
        fifo(c, d, depth=5)
        assert token_counts(c.graph)["dff8"] == 5

    def test_counter_has_feedback(self):
        c = Circuit()
        q = counter(c, 8)
        preds = c.graph.predecessors(q.node_id)
        assert len(preds) == 1
        assert c.graph.node(preds[0]).node_type == "add"

    def test_shift_register_taps(self):
        c = Circuit()
        d = c.input("d", 4)
        taps = shift_register(c, d, stages=3)
        assert len(taps) == 3
        assert token_counts(c.graph)["dff4"] == 3

    def test_lfsr_elaborates(self):
        c = Circuit()
        lfsr(c, 16)
        c.finalize()
        assert token_counts(c.graph)["dff16"] == 1

    def test_priority_arbiter(self):
        c = Circuit()
        reqs = [c.input(f"r{k}", 1) for k in range(4)]
        grants = priority_arbiter(c, reqs)
        assert len(grants) == 4
        assert grants[0] is reqs[0]

    def test_pipeline_zero_stages_is_wire(self):
        c = Circuit()
        d = c.input("d", 8)
        assert pipeline(c, d, 0) is d

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 32))
    def test_property_adder_tree_is_n_minus_1(self, n):
        c = Circuit()
        sigs = [c.input(f"i{k}", 8) for k in range(n)]
        adder_tree(c, sigs)
        assert token_counts(c.graph)["add8"] == n - 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 32))
    def test_property_mux_tree_is_n_minus_1(self, n):
        c = Circuit()
        sel = c.input("sel", 6)
        sigs = [c.input(f"i{k}", 8) for k in range(n)]
        mux_tree(c, sel, sigs)
        assert token_counts(c.graph)["mux8"] == n - 1
