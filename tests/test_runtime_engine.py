"""Tests for the batched, cached inference runtime (``repro.runtime``).

Covers the three pillars of the engine: batch-composition-invariant
prediction (engine output bit-identical to serial ``SNS.predict``),
content-addressed caching (hits on repeats, automatic invalidation on
weight/sampler/activity changes), and parallel path-dataset generation
(bit-identical to the serial builder).
"""

import numpy as np
import pytest

from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig
from repro.datagen import build_design_dataset, sample_path_dataset
from repro.designs import standard_designs
from repro.runtime import (
    BatchPredictor,
    PredictionCache,
    derive_design_seed,
    fingerprint_graph,
    fingerprint_model,
    fingerprint_sampler,
    parallel_sample_path_dataset,
    resolve_activity_maps,
)
from repro.synth import Synthesizer

TINY_CF = CircuitformerConfig(embedding_size=16, dim_feedforward=32, max_input_size=64)
DESIGN_NAMES = ("gpio16", "piecewise8", "mergesort8", "sodor32", "icenet64",
                "conv3x3")


@pytest.fixture(scope="module")
def tiny_sns():
    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs() if e.name in DESIGN_NAMES]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=40, seed=0),
              circuitformer_config=TINY_CF,
              training_config=TrainingConfig(circuitformer_epochs=4,
                                             aggregator_epochs=60))
    sns.fit(records, synthesizer=synth)
    return sns, records


@pytest.fixture()
def graphs(tiny_sns):
    _, records = tiny_sns
    return [r.graph for r in records]


class TestPredictPathsDedup:
    def test_duplicates_broadcast(self, tiny_sns):
        """Duplicate sequences in the input map onto one computed row."""
        sns, records = tiny_sns
        paths = sns.sampler.sample(records[0].graph)
        seqs = [p.tokens for p in paths[:4]]
        doubled = seqs + list(reversed(seqs)) + [seqs[0]]
        out = sns.circuitformer.predict_paths(doubled)
        assert out.shape == (len(doubled), 3)
        for i, seq in enumerate(doubled):
            j = doubled.index(seq)
            np.testing.assert_array_equal(out[i], out[j])

    def test_matches_predict_unique(self, tiny_sns):
        sns, records = tiny_sns
        paths = sns.sampler.sample(records[1].graph)
        seqs = [p.tokens for p in paths[:6]]
        via_paths = sns.circuitformer.predict_paths(seqs + seqs)
        via_unique = sns.circuitformer.predict_unique(
            list(dict.fromkeys(seqs)))
        for i, seq in enumerate(seqs):
            k = list(dict.fromkeys(seqs)).index(seq)
            np.testing.assert_array_equal(via_paths[i], via_unique[k])
            np.testing.assert_array_equal(via_paths[len(seqs) + i], via_unique[k])

    def test_composition_invariance(self, tiny_sns, graphs):
        """predict_unique output per sequence is independent of what else
        is in the pool — the property the whole engine stands on."""
        sns, _ = tiny_sns
        pool = []
        for g in graphs[:3]:
            pool.extend(p.tokens for p in sns.sampler.sample(g))
        pool = list(dict.fromkeys(pool))
        full = sns.circuitformer.predict_unique(pool)
        half = sns.circuitformer.predict_unique(pool[: len(pool) // 2])
        np.testing.assert_array_equal(full[: len(pool) // 2], half)


class TestEngineEquivalence:
    def test_bit_identical_to_serial_predict(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        engine = BatchPredictor(sns)
        batched = engine.predict_batch(graphs)
        for graph, b in zip(graphs, batched):
            s = sns.predict(graph)
            assert s.timing_ps == b.timing_ps
            assert s.area_um2 == b.area_um2
            assert s.power_mw == b.power_mw
            assert s.num_paths == b.num_paths
            assert s.critical_path.tokens == b.critical_path.tokens
            assert b.design == graph.name

    def test_identical_designs_collapse(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        engine = BatchPredictor(sns)
        preds = engine.predict_batch([graphs[0]] * 4)
        assert engine.cache.stats.misses == 4  # four lookups, one compute
        assert len(engine.cache) == 1
        assert len({p.timing_ps for p in preds}) == 1

    def test_predict_many_routes_through_engine(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        many = sns.predict_many(graphs)
        for graph, p in zip(graphs, many):
            s = sns.predict(graph)
            assert (s.timing_ps, s.area_um2, s.power_mw) == \
                (p.timing_ps, p.area_um2, p.power_mw)

    def test_uncached_engine(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        engine = BatchPredictor(sns, caching=False)
        assert engine.cache is None
        preds = engine.predict_batch(graphs[:2])
        assert preds[0].timing_ps == sns.predict(graphs[0]).timing_ps

    def test_empty_batch(self, tiny_sns):
        sns, _ = tiny_sns
        assert BatchPredictor(sns).predict_batch([]) == []

    def test_unfitted_raises(self):
        sns = SNS(circuitformer_config=TINY_CF)
        from repro.designs import get_design
        with pytest.raises(RuntimeError):
            BatchPredictor(sns).predict_batch(
                [get_design("gpio16").module.elaborate()])


class TestCache:
    def test_hit_after_identical_predict(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        engine = BatchPredictor(sns)
        first = engine.predict_batch(graphs)
        assert engine.cache.stats.misses == len(graphs)
        assert engine.cache.stats.hits == 0
        second = engine.predict_batch(graphs)
        assert engine.cache.stats.memory_hits == len(graphs)
        for a, b in zip(first, second):
            assert a.timing_ps == b.timing_ps
            assert a.area_um2 == b.area_um2
            assert a.power_mw == b.power_mw

    def test_model_fingerprint_memoized_until_weights_change(self, tiny_sns):
        sns, _ = tiny_sns
        first = fingerprint_model(sns)
        assert fingerprint_model(sns) == first  # memoized repeat call
        param = sns.circuitformer.parameters()[0]
        original = param.data
        # Re-assignment bumps the version and forces a re-hash, but
        # identical bytes must reproduce the identical digest.
        param.data = original.copy()
        assert fingerprint_model(sns) == first
        try:
            param.data = original + 1e-6
            assert fingerprint_model(sns) != first
        finally:
            param.data = original
        assert fingerprint_model(sns) == first

    def test_miss_after_weight_mutation(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        cache = PredictionCache()
        BatchPredictor(sns, cache=cache).predict_batch(graphs[:1])
        before = fingerprint_model(sns)
        param = sns.circuitformer.parameters()[0]
        original = param.data.copy()
        try:
            param.data = original + 1e-6
            assert fingerprint_model(sns) != before
            engine = BatchPredictor(sns, cache=cache)
            engine.predict_batch(graphs[:1])
            assert engine.cache.stats.misses == 2  # 1 from warmup + 1 now
            assert engine.cache.stats.hits == 0
        finally:
            param.data = original
        assert fingerprint_model(sns) == before

    def test_miss_after_sampler_config_change(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        cache = PredictionCache()
        BatchPredictor(sns, cache=cache).predict_batch(graphs[:1])
        original = sns.sampler
        assert fingerprint_sampler(PathSampler(k=original.k + 1,
                                               max_paths=original.max_paths,
                                               seed=original.seed)) \
            != fingerprint_sampler(original)
        try:
            sns.sampler = PathSampler(k=original.k + 1,
                                      max_paths=original.max_paths,
                                      seed=original.seed)
            engine = BatchPredictor(sns, cache=cache)
            engine.predict_batch(graphs[:1])
            assert engine.cache.stats.hits == 0
        finally:
            sns.sampler = original

    def test_miss_after_activity_change(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        cache = PredictionCache()
        engine = BatchPredictor(sns, cache=cache)
        graph = graphs[0]
        engine.predict_batch([graph])
        activity = {nid: 0.001 for nid in graph.sequential_ids()}
        gated = engine.predict_batch([graph], activity_maps=[activity])
        assert cache.stats.misses == 2
        assert gated[0].power_mw <= engine.predict_batch([graph])[0].power_mw

    def test_disk_tier_survives_memory_clear(self, tiny_sns, graphs, tmp_path):
        sns, _ = tiny_sns
        cache = PredictionCache(disk_dir=tmp_path / "cache")
        engine = BatchPredictor(sns, cache=cache)
        first = engine.predict_batch(graphs[:2])
        cache.clear(memory_only=True)
        assert len(cache) == 0
        second = engine.predict_batch(graphs[:2])
        assert cache.stats.disk_hits == 2
        assert first[0].timing_ps == second[0].timing_ps

    def test_lru_eviction(self):
        cache = PredictionCache(max_entries=2)
        cache.put("a", {"x": 1})
        cache.put("b", {"x": 2})
        cache.get("a")           # refresh a; b is now the LRU entry
        cache.put("c", {"x": 3})
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_graph_fingerprint_ignores_name(self, graphs):
        import copy
        g = copy.deepcopy(graphs[0])
        g.name = "renamed"
        assert fingerprint_graph(g) == fingerprint_graph(graphs[0])


class TestActivityResolution:
    def test_dict_matched_by_name(self, graphs):
        amap = {graphs[1].name: {7: 0.5}}
        resolved = resolve_activity_maps(graphs[:3], amap)
        assert resolved == [None, {7: 0.5}, None]

    def test_unmatched_key_warns(self, graphs):
        with pytest.warns(UserWarning, match="no_such_design"):
            resolve_activity_maps(graphs[:2], {"no_such_design": {1: 0.1}})

    def test_aligned_sequence(self, graphs):
        resolved = resolve_activity_maps(graphs[:2], [None, {3: 0.2}])
        assert resolved == [None, {3: 0.2}]

    def test_length_mismatch_raises(self, graphs):
        with pytest.raises(ValueError):
            resolve_activity_maps(graphs[:3], [{1: 0.1}])

    def test_sequence_all_none_dict_warns_and_normalizes(self, graphs):
        # A name-keyed mapping of all-None values slipped into the
        # sequence slot: misaligned with the design at its position.
        stray = {graphs[1].name: None}
        with pytest.warns(UserWarning, match="sequence form"):
            resolved = resolve_activity_maps(graphs[:2], [stray, None])
        assert resolved == [None, None]

    def test_sequence_all_none_dict_matching_name_is_silent(self, graphs):
        import warnings as _warnings

        entry = {graphs[0].name: None}
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            resolved = resolve_activity_maps(graphs[:2], [entry, None])
        assert resolved == [None, None]

    def test_sequence_real_activity_dict_untouched(self, graphs):
        # Entries with actual activity values must pass through verbatim.
        entry = {3: 0.2, 7: None}
        resolved = resolve_activity_maps(graphs[:2], [entry, None])
        assert resolved == [entry, None]


class TestExecutorEngine:
    def test_fp64_executor_predictions_bitwise(self, tiny_sns, graphs):
        """The compiled executor path shares cache entries with the
        dynamic path because its fp64 outputs are bit-identical."""
        sns, _ = tiny_sns
        plain = BatchPredictor(sns, caching=False).predict_batch(graphs[:3])
        compiled = BatchPredictor(sns, caching=False, executor=True,
                                  threads=2).predict_batch(graphs[:3])
        for a, b in zip(plain, compiled):
            assert (a.timing_ps, a.area_um2, a.power_mw) == \
                   (b.timing_ps, b.area_um2, b.power_mw)

    def test_reduced_precision_gets_own_cache_rows(self, tiny_sns, graphs):
        sns, _ = tiny_sns
        cache = PredictionCache()
        BatchPredictor(sns, cache=cache).predict_batch(graphs[:1])
        engine8 = BatchPredictor(sns, cache=cache, executor=True,
                                 precision="int8")
        engine8.predict_batch(graphs[:1])
        # Different precision must not hit the fp64 entry.
        assert cache.stats.misses == 2
        engine8.predict_batch(graphs[:1])
        assert cache.stats.memory_hits == 1


class TestParallelDataset:
    def test_matches_serial_builder(self, tiny_sns):
        _, records = tiny_sns
        synth = Synthesizer(effort="low")
        sampler = PathSampler(k=3, max_paths=10, seed=1)
        serial = sample_path_dataset(records, sampler, synth)
        parallel = sample_path_dataset(records, sampler, synth, num_workers=2)
        assert [r.tokens for r in serial] == [r.tokens for r in parallel]
        assert [tuple(r.labels) for r in serial] == \
            [tuple(r.labels) for r in parallel]

    def test_per_design_seed_is_deterministic(self, tiny_sns):
        _, records = tiny_sns
        synth = Synthesizer(effort="low")
        sampler = PathSampler(k=3, max_paths=10, seed=1)
        a = parallel_sample_path_dataset(records, sampler, synth,
                                         num_workers=2, per_design_seed=True)
        b = parallel_sample_path_dataset(records, sampler, synth,
                                         num_workers=2, per_design_seed=True)
        assert [r.tokens for r in a] == [r.tokens for r in b]

    def test_derive_design_seed_spread(self):
        seeds = {derive_design_seed(0, name) for name in DESIGN_NAMES}
        assert len(seeds) == len(DESIGN_NAMES)
        assert all(0 <= s < 2**31 for s in seeds)
