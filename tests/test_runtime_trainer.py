"""Tests for the length-bucketed training engine (``repro.runtime.trainer``).

Covers the engine's three contracts:

- **Compatibility parity** — with ``bucketed=False`` the engine's loss
  curves and final weights match the reference loops bit-for-bit;
- **Fused kernels** — the in-place Adam/SGD steps are bit-identical to
  the allocate-per-step reference optimizers, bump
  ``Parameter.version``, and the vectorized ``clip_grad_norm`` computes
  the same norm/scaling as the naive per-array formulation;
- **Memory discipline** — ``backward`` frees the autograd graph, and
  bucket encodings are built once and reused (``EncodingCache`` /
  ``PreparedPathDataset``).
"""

from __future__ import annotations

import weakref

import numpy as np
import pytest

from repro import nn
from repro.core.aggregator import AggregationMLP
from repro.core.circuitformer import Circuitformer, CircuitformerConfig, encode_batch
from repro.core.sampler import PathSampler
from repro.core.training import (TrainingConfig, train_aggregator,
                                 train_aggregator_reference,
                                 train_circuitformer,
                                 train_circuitformer_reference)
from repro.datagen import build_design_dataset
from repro.datagen.dataset import PathRecord
from repro.designs import standard_designs
from repro.graphir import Vocabulary
from repro.runtime import EncodingCache, PreparedPathDataset, TrainingEngine
from repro.synth import Synthesizer

TINY_CF = CircuitformerConfig(embedding_size=16, dim_feedforward=32,
                              max_input_size=64)
VOCAB = Vocabulary.standard()
TOKENS = list(VOCAB.tokens)[:12]


def make_records(n: int, seed: int = 42) -> list[PathRecord]:
    """Synthetic mixed-length path records: mostly short, a long tail."""
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n):
        r = rng.random()
        if r < 0.7:
            length = int(rng.integers(3, 12))
        elif r < 0.9:
            length = int(rng.integers(12, 40))
        else:
            length = int(rng.integers(40, 60))
        tokens = tuple(TOKENS[int(j)]
                       for j in rng.integers(0, len(TOKENS), length))
        records.append(PathRecord(
            tokens=tokens,
            timing_ps=float(rng.random() * 100 + 10),
            area_um2=float(rng.random() * 50 + 1),
            power_mw=float(rng.random() * 5 + 0.1)))
    return records


@pytest.fixture(scope="module")
def records():
    return make_records(48)


@pytest.fixture(scope="module")
def tiny_designs():
    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs()
               if e.name in ("gpio16", "piecewise8", "mergesort8", "conv3x3")]
    return build_design_dataset(entries, synth)


# --------------------------------------------------------------------- #
# Compatibility parity
# --------------------------------------------------------------------- #
class TestCompatParity:
    def test_circuitformer_matches_reference_loop(self, records):
        """Engine compat mode == reference loop: curves and weights."""
        config = TrainingConfig(circuitformer_epochs=3, circuitformer_batch=16,
                                seed=0)  # bucketed=False, fused=True defaults
        ref_model = Circuitformer(TINY_CF, seed=0)
        ref_hist = train_circuitformer_reference(ref_model, records, config)

        eng_model = Circuitformer(TINY_CF, seed=0)
        eng_hist = train_circuitformer(eng_model, records, config)

        assert [(s.epoch, s.train_loss, s.val_loss) for s in ref_hist] == \
               [(s.epoch, s.train_loss, s.val_loss) for s in eng_hist]
        ref_state, eng_state = ref_model.state_dict(), eng_model.state_dict()
        assert set(ref_state) == set(eng_state)
        for name in ref_state:
            np.testing.assert_allclose(eng_state[name], ref_state[name],
                                       rtol=0, atol=1e-9, err_msg=name)

    def test_aggregator_matches_reference_loop(self, tiny_designs):
        config = TrainingConfig(aggregator_epochs=25, aggregator_batch=2,
                                seed=3)
        circuitformer = Circuitformer(TINY_CF, seed=0)
        sampler = PathSampler(k=5, max_paths=30, seed=0)

        ref_mlp = AggregationMLP(seed=1)
        ref_curve = train_aggregator_reference(
            ref_mlp, tiny_designs, circuitformer, sampler, config)

        eng_mlp = AggregationMLP(seed=1)
        eng_curve = train_aggregator(
            eng_mlp, tiny_designs, circuitformer, sampler, config)

        assert ref_curve == eng_curve
        for r_head, e_head in zip(ref_mlp.heads, eng_mlp.heads):
            for (name, rp), (_, ep) in zip(r_head.named_parameters(),
                                           e_head.named_parameters()):
                np.testing.assert_allclose(np.asarray(ep.data),
                                           np.asarray(rp.data),
                                           rtol=0, atol=1e-9, err_msg=name)

    def test_unfused_engine_matches_fused(self, records):
        """Reference optimizers inside the engine change nothing."""
        config = TrainingConfig(circuitformer_epochs=2, circuitformer_batch=16,
                                seed=0)
        fused = Circuitformer(TINY_CF, seed=0)
        hist_f = TrainingEngine(bucketed=False, fused=True).train_circuitformer(
            fused, records, config)
        plain = Circuitformer(TINY_CF, seed=0)
        hist_p = TrainingEngine(bucketed=False, fused=False).train_circuitformer(
            plain, records, config)
        assert [s.train_loss for s in hist_f] == [s.train_loss for s in hist_p]
        for name, value in fused.state_dict().items():
            np.testing.assert_array_equal(value, plain.state_dict()[name])


# --------------------------------------------------------------------- #
# Bucketed mode
# --------------------------------------------------------------------- #
class TestBucketedMode:
    def test_deterministic_in_seed(self, records):
        config = TrainingConfig(circuitformer_epochs=2, circuitformer_batch=16,
                                seed=7, bucketed=True)
        runs = []
        for _ in range(2):
            model = Circuitformer(TINY_CF, seed=0)
            hist = train_circuitformer(model, records, config)
            runs.append(([(s.train_loss, s.val_loss) for s in hist],
                         model.state_dict()))
        assert runs[0][0] == runs[1][0]
        for name, value in runs[0][1].items():
            np.testing.assert_array_equal(value, runs[1][1][name])

    def test_trains_and_profiles(self, records):
        engine = TrainingEngine(bucketed=True, encoding_cache=EncodingCache())
        model = Circuitformer(TINY_CF, seed=0)
        config = TrainingConfig(circuitformer_epochs=2, circuitformer_batch=16)
        hist = engine.train_circuitformer(model, records, config)
        assert len(hist) == 2
        assert all(np.isfinite(s.train_loss) and np.isfinite(s.val_loss)
                   for s in hist)
        profile = engine.last_profile
        assert profile is not None and profile.model == "circuitformer"
        assert profile.steps > 0 and profile.steps_per_sec > 0
        assert set(profile.phase_seconds) == {
            "prepare", "forward", "backward", "optimizer", "validation"}
        assert sum(profile.bucket_rows.values()) == len(records)
        # Every epoch past the first reuses the prepared encodings.
        assert profile.encoding_stats["misses"] == len(profile.bucket_rows)
        assert "steps/s" in profile.format()

    def test_batches_cover_every_row_once(self, records):
        engine = TrainingEngine(bucketed=True)
        prepared = PreparedPathDataset([r.tokens for r in records], VOCAB,
                                       max_len=63, bucketed=True)
        train_idx = np.arange(len(records))
        rng = np.random.default_rng(0)
        batches = list(engine._epoch_batches(prepared, train_idx, 8, rng))
        seen = np.concatenate(batches)
        assert sorted(seen.tolist()) == train_idx.tolist()
        for batch in batches:
            assert len(set(prepared.bucket_of[batch].tolist())) == 1


# --------------------------------------------------------------------- #
# Prepared encodings
# --------------------------------------------------------------------- #
class TestPreparedDataset:
    def test_compat_slice_matches_global_encode(self, records):
        seqs = [r.tokens for r in records]
        max_len = min(63, max(len(s) for s in seqs))
        prepared = PreparedPathDataset(seqs, VOCAB, max_len, bucketed=False)
        ids, mask = encode_batch(seqs, VOCAB, max_len)
        rows = np.array([5, 0, 17, 3])
        got_ids, got_mask = prepared.slice(rows)
        np.testing.assert_array_equal(got_ids, ids[rows])
        np.testing.assert_array_equal(got_mask, mask[rows])

    def test_bucketed_slice_matches_bucket_encode(self, records):
        seqs = [r.tokens for r in records]
        prepared = PreparedPathDataset(seqs, VOCAB, 63, bucketed=True)
        for bucket, rows in prepared.group_by_bucket(
                np.arange(len(seqs))).items():
            ids, mask = encode_batch([seqs[r] for r in rows], VOCAB, bucket)
            got_ids, got_mask = prepared.slice(rows)
            np.testing.assert_array_equal(got_ids, ids)
            np.testing.assert_array_equal(got_mask, mask)

    def test_bucketing_shrinks_padding(self, records):
        seqs = [r.tokens for r in records]
        bucketed = PreparedPathDataset(seqs, VOCAB, 63, bucketed=True)
        padded = PreparedPathDataset(seqs, VOCAB, 63, bucketed=False)
        assert bucketed.padded_cells() < padded.padded_cells()

    def test_encoding_cache_hits_and_lru_eviction(self):
        cache = EncodingCache(max_entries=2)
        seqs_a = [tuple(TOKENS[:3]), tuple(TOKENS[2:6])]
        seqs_b = [tuple(TOKENS[1:5])]
        first = cache.encode(seqs_a, VOCAB, 8)
        again = cache.encode(seqs_a, VOCAB, 8)
        assert again[0] is first[0] and cache.hits == 1
        np.testing.assert_array_equal(first[0],
                                      encode_batch(seqs_a, VOCAB, 8)[0])
        cache.encode(seqs_b, VOCAB, 8)
        cache.encode(seqs_a, VOCAB, 16)  # evicts the (seqs_a, 8) entry
        assert len(cache) == 2
        cache.encode(seqs_a, VOCAB, 8)
        assert cache.misses == 4  # re-encoded after eviction


# --------------------------------------------------------------------- #
# Autograd memory discipline
# --------------------------------------------------------------------- #
class TestGraphFreeing:
    def _build_loss(self):
        rng = np.random.default_rng(0)
        x = nn.Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        w = nn.Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        mid = x.matmul(w)
        loss = (mid * mid).sum()
        return x, mid, loss

    def test_backward_frees_graph(self):
        x, mid, loss = self._build_loss()
        ref = weakref.ref(mid)
        loss.backward()
        assert loss._parents == () and loss._backward is None
        assert x.grad is not None
        del mid, loss
        assert ref() is None

    def test_free_graph_false_retains_graph(self):
        x, mid, loss = self._build_loss()
        ref = weakref.ref(mid)
        loss.backward(free_graph=False)
        assert loss._parents != ()
        del mid
        assert ref() is not None
        del loss
        assert ref() is None


# --------------------------------------------------------------------- #
# Fused optimizers and version tracking
# --------------------------------------------------------------------- #
def _optimizer_trajectory(opt_cls, steps: int = 10, **kwargs):
    rng = np.random.default_rng(0)
    params = [nn.Parameter(rng.normal(size=(6, 5))),
              nn.Parameter(rng.normal(size=(5,)))]
    opt = opt_cls(params, **kwargs)
    grad_rng = np.random.default_rng(1)
    for _ in range(steps):
        for p in params:
            p.grad = grad_rng.normal(size=p.shape)
        opt.step(max_grad_norm=1.5)
    return [np.array(p.data) for p in params]


class TestFusedOptimizers:
    def test_fused_adam_bit_identical_to_reference(self):
        fused = _optimizer_trajectory(nn.Adam, lr=0.01, weight_decay=1e-2)
        ref = _optimizer_trajectory(nn.ReferenceAdam, lr=0.01, weight_decay=1e-2)
        for f, r in zip(fused, ref):
            np.testing.assert_array_equal(f, r)

    def test_fused_sgd_bit_identical_to_reference(self):
        fused = _optimizer_trajectory(nn.SGD, lr=0.05, momentum=0.9,
                                      weight_decay=1e-3)
        ref = _optimizer_trajectory(nn.ReferenceSGD, lr=0.05, momentum=0.9,
                                    weight_decay=1e-3)
        for f, r in zip(fused, ref):
            np.testing.assert_array_equal(f, r)

    def test_fused_step_bumps_parameter_version(self):
        p = nn.Parameter(np.ones((3, 3)))
        opt = nn.Adam([p], lr=0.1)
        p.grad = np.ones((3, 3))
        before = p.version
        opt.step()
        assert p.version > before

    def test_inplace_data_mutations_bump_version(self):
        p = nn.Parameter(np.zeros(4))
        base = p.version
        p.data += 1.0
        assert p.version == base + 1
        np.multiply(p.data, 2.0, out=p.data)
        assert p.version == base + 2
        p.data[1] = 5.0
        assert p.version == base + 3
        np.add.at(p.data, [0], 1.0)
        assert p.version == base + 4
        _ = p.data * 3.0  # ordinary read: no bump
        assert p.version == base + 4

    def test_clip_grad_norm_matches_naive(self):
        rng = np.random.default_rng(5)
        params = [nn.Parameter(rng.normal(size=shape))
                  for shape in ((3, 4), (7,), (2, 2, 2))]
        for p in params:
            p.grad = rng.normal(size=p.shape) * 10.0
        raw = [p.grad.copy() for p in params]
        expected_norm = float(np.sqrt(sum(float((g * g).sum()) for g in raw)))
        norm = nn.clip_grad_norm(params, 1.0)
        assert norm == pytest.approx(expected_norm, rel=1e-12)
        for p, g in zip(params, raw):
            np.testing.assert_allclose(p.grad, g * (1.0 / expected_norm),
                                       rtol=1e-12, atol=0)

    def test_clip_grad_norm_below_threshold_is_noop(self):
        p = nn.Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.2, 0.05])
        before = p.grad.copy()
        nn.clip_grad_norm([p], 5.0)
        np.testing.assert_array_equal(p.grad, before)
