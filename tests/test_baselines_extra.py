"""Tests for the random-forest and GCN baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DecisionTreeRegressor,
    ForestDesignModel,
    GCNConfig,
    GCNPowerModel,
    RandomForestRegressor,
)
from tests.test_baselines import chain_graph


class TestDecisionTree:
    def test_fits_step_function(self):
        X = np.arange(20.0).reshape(-1, 1)
        y = (X[:, 0] >= 10).astype(float) * 5.0
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        np.testing.assert_allclose(tree.predict(np.array([[3.0], [15.0]])),
                                   [0.0, 5.0])

    def test_depth_limit(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_constant_target_single_leaf(self):
        X = np.arange(10.0).reshape(-1, 1)
        tree = DecisionTreeRegressor().fit(X, np.full(10, 7.0))
        assert tree.depth() == 0
        np.testing.assert_allclose(tree.predict(X), 7.0)

    def test_min_samples_leaf(self):
        X = np.arange(6.0).reshape(-1, 1)
        y = np.array([0.0, 0, 0, 1, 1, 1])
        tree = DecisionTreeRegressor(min_samples_leaf=3).fit(X, y)
        # the only legal split is the 3/3 one
        assert tree.depth() <= 1

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_leaf_values_within_target_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 2))
        y = rng.uniform(-5, 5, size=30)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        preds = tree.predict(X)
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9


class TestRandomForest:
    def test_generalizes_on_noisy_linear_signal(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 4))
        y = X[:, 0] * 3 + rng.normal(scale=0.5, size=80)
        X_test = rng.normal(size=(40, 4))
        y_test = X_test[:, 0] * 3
        forest = RandomForestRegressor(n_trees=25, seed=0).fit(X, y)
        err_forest = np.mean((forest.predict(X_test) - y_test) ** 2)
        # Far better than predicting the mean (variance of the target).
        assert err_forest < 0.5 * y_test.var()

    def test_ensemble_smoother_than_one_tree(self):
        """Averaged trees give intermediate values a single tree cannot."""
        X = np.arange(20.0).reshape(-1, 1)
        y = (X[:, 0] >= 10).astype(float)
        forest = RandomForestRegressor(n_trees=40, seed=0).fit(X, y)
        mid = forest.predict(np.array([[9.7]]))[0]
        assert 0.0 < mid < 1.0

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 3))
        y = rng.normal(size=30)
        p1 = RandomForestRegressor(n_trees=5, seed=7).fit(X, y).predict(X)
        p2 = RandomForestRegressor(n_trees=5, seed=7).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((1, 2)))


class TestForestDesignModel:
    def test_fits_design_scale(self):
        graphs = [chain_graph(n) for n in (1, 2, 4, 6, 8, 10, 14, 18)]
        labels = np.stack([[50.0 + 20 * g.num_nodes,
                            100.0 * g.num_nodes,
                            g.num_nodes] for g in graphs])
        model = ForestDesignModel(n_trees=15, seed=0).fit(graphs, labels)
        preds = model.predict([chain_graph(3), chain_graph(16)])
        assert preds.shape == (2, 3)
        assert preds[1, 1] > preds[0, 1]  # bigger design -> more area


class TestGCNPower:
    def test_learns_power_scale(self):
        graphs = [chain_graph(n) for n in (1, 2, 4, 6, 9, 12)]
        powers = np.array([0.1 * g.num_nodes for g in graphs])
        model = GCNPowerModel(GCNConfig(epochs=60, hidden_size=16, seed=0))
        model.fit(graphs, powers)
        preds = model.predict([chain_graph(2), chain_graph(11)])
        assert preds[1] > preds[0]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GCNPowerModel().predict([chain_graph(1)])

    def test_too_few_graphs(self):
        with pytest.raises(ValueError):
            GCNPowerModel().fit([chain_graph(1)], np.array([1.0]))

    def test_nonnegative(self):
        graphs = [chain_graph(n) for n in (1, 3, 5, 7)]
        model = GCNPowerModel(GCNConfig(epochs=10, hidden_size=8))
        model.fit(graphs, np.array([0.5, 1.0, 1.5, 2.0]))
        assert (model.predict(graphs) >= 0).all()
