"""Tests for the BOOM case study: config space, generator, perf model, DSE."""

import numpy as np
import pytest

from repro.boom import (
    TABLE10,
    BoomConfig,
    BoomCore,
    BoomDSE,
    CoreMarkModel,
    full_design_space,
    pareto_front,
)
from repro.synth import Synthesizer


class TestConfigSpace:
    def test_2592_combinations(self):
        """Table 10: 3*4*2*2*3*3*3*2 = 2592 designs."""
        space = full_design_space()
        assert len(space) == 2592
        assert len({c.name for c in space}) == 2592

    def test_table10_counts(self):
        expected = {"branch_predictor": 3, "core_width": 4, "memory_ports": 2,
                    "fetch_width": 2, "rob_size": 3, "int_regs": 3,
                    "issue_slots": 3, "dcache_ways": 2}
        assert {k: len(v) for k, v in TABLE10.items()} == expected

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            BoomConfig(core_width=5)
        with pytest.raises(ValueError):
            BoomConfig(branch_predictor="oracle")


class TestGenerator:
    def test_elaborates_and_synthesizes(self):
        g = BoomCore(BoomConfig()).elaborate()
        g.validate()
        result = Synthesizer(effort="low").synthesize(g)
        assert result.area_um2 > 0 and result.timing_ps > 0

    def test_bigger_config_bigger_core(self):
        small = BoomCore(BoomConfig(core_width=1, rob_size=32, int_regs=52,
                                    issue_slots=8, fetch_width=4,
                                    branch_predictor="boom2")).elaborate()
        big = BoomCore(BoomConfig(core_width=4, rob_size=96, int_regs=100,
                                  issue_slots=32, fetch_width=8,
                                  branch_predictor="tage-l")).elaborate()
        assert big.num_nodes > 2 * small.num_nodes

    @pytest.mark.parametrize("param,lo,hi", [
        ("rob_size", 32, 96),
        ("issue_slots", 8, 32),
        ("int_regs", 52, 100),
        ("dcache_ways", 4, 8),
        ("memory_ports", 1, 2),
    ])
    def test_each_parameter_changes_hardware(self, param, lo, hi):
        ga = BoomCore(BoomConfig(**{param: lo})).elaborate()
        gb = BoomCore(BoomConfig(**{param: hi})).elaborate()
        assert gb.num_nodes > ga.num_nodes

    def test_predictors_differ_in_cost(self):
        sizes = {}
        for bp in ("boom2", "alpha21264", "tage-l"):
            sizes[bp] = BoomCore(BoomConfig(branch_predictor=bp)).elaborate().num_nodes
        assert sizes["boom2"] < sizes["alpha21264"] < sizes["tage-l"]


class TestPerfModel:
    def test_wider_core_faster(self):
        m = CoreMarkModel()
        narrow = m.ipc(BoomConfig(core_width=1))
        wide = m.ipc(BoomConfig(core_width=4, issue_slots=32, rob_size=96,
                                int_regs=100, fetch_width=8))
        assert wide > narrow

    def test_issue_slots_saturate_at_decode_width(self):
        """Paper observation 1: 32 slots gain nothing over 16 on a 4-wide core."""
        m = CoreMarkModel()
        base = dict(core_width=4, fetch_width=8, rob_size=96, int_regs=100)
        ipc16 = m.ipc(BoomConfig(issue_slots=16, **base))
        ipc32 = m.ipc(BoomConfig(issue_slots=32, **base))
        assert ipc32 == pytest.approx(ipc16)

    def test_memory_ports_do_not_bind_on_coremark(self):
        """Paper observation 3: CoreMark is not memory-throughput bound."""
        m = CoreMarkModel()
        one = m.ipc(BoomConfig(memory_ports=1))
        two = m.ipc(BoomConfig(memory_ports=2))
        assert two == pytest.approx(one)

    def test_better_predictor_helps(self):
        m = CoreMarkModel()
        assert m.ipc(BoomConfig(branch_predictor="tage-l")) > \
            m.ipc(BoomConfig(branch_predictor="boom2"))

    def test_diminishing_returns_from_resources(self):
        """Paper observation 2: small cores are only marginally slower."""
        m = CoreMarkModel()
        modest = m.ipc(BoomConfig(core_width=4, fetch_width=8, rob_size=32,
                                  int_regs=52, issue_slots=8))
        maxed = m.ipc(BoomConfig(core_width=4, fetch_width=8, rob_size=96,
                                 int_regs=100, issue_slots=32))
        assert modest > 0.4 * maxed  # far closer than the resource ratio

    def test_score_scales_with_frequency(self):
        m = CoreMarkModel()
        cfg = BoomConfig()
        assert m.score(cfg, 2.0) == pytest.approx(2 * m.score(cfg, 1.0))

    def test_score_invalid_frequency(self):
        with pytest.raises(ValueError):
            CoreMarkModel().score(BoomConfig(), 0.0)

    def test_bottleneck_names_limit(self):
        m = CoreMarkModel()
        assert m.bottleneck(BoomConfig(core_width=1, issue_slots=32,
                                       rob_size=96, int_regs=100)) == "decode"
        assert m.bottleneck(BoomConfig(core_width=4, fetch_width=8,
                                       issue_slots=8, rob_size=96,
                                       int_regs=100)) == "issue"


class TestDSE:
    def test_pareto_front_dominance(self):
        from repro.boom.dse import DSEPoint
        cfg = BoomConfig()
        pts = [DSEPoint(cfg, 1, area, 1.0, score) for area, score in
               [(10, 0.5), (20, 0.9), (15, 0.4), (30, 1.0), (25, 0.95)]]
        front = pareto_front(pts, lambda p: p.area_um2)
        areas = [p.area_um2 for p in front]
        assert areas == sorted(areas)
        for a, b in zip(front, front[1:]):
            assert b.score > a.score

    def test_requires_exactly_one_engine(self):
        with pytest.raises(ValueError):
            BoomDSE()
        with pytest.raises(ValueError):
            BoomDSE(predictor=object(), synthesizer=Synthesizer())

    def test_synthesizer_backed_dse(self):
        """A small sweep with the reference synthesizer as the engine."""
        configs = [
            BoomConfig(core_width=1, issue_slots=8, rob_size=32, int_regs=52,
                       branch_predictor="boom2"),
            BoomConfig(core_width=2, issue_slots=16, rob_size=64, int_regs=80),
            BoomConfig(core_width=4, issue_slots=32, rob_size=96, int_regs=100,
                       fetch_width=8),
        ]
        dse = BoomDSE(synthesizer=Synthesizer(effort="low"))
        result = dse.run(configs)
        assert len(result.points) == 3
        assert result.high_perf.score == pytest.approx(1.0)
        assert result.runtime_s > 0
        # Wider cores should win CoreMark here.
        assert result.high_perf.config.core_width == 4
        # Pareto fronts are subsets of the evaluated points.
        assert set(result.pareto_power) <= set(result.points)

    def test_empty_configs(self):
        with pytest.raises(ValueError):
            BoomDSE(synthesizer=Synthesizer(effort="low")).run([])
