"""Tests for SNS model persistence and the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    SNS,
    CircuitformerConfig,
    PathSampler,
    TrainingConfig,
    load_sns,
    save_sns,
)
from repro.datagen import build_design_dataset
from repro.designs import standard_designs
from repro.synth import Synthesizer

TINY_CF = CircuitformerConfig(embedding_size=16, dim_feedforward=32, max_input_size=64)

MAC_V = """
module mac(input clk, input [7:0] a, input [7:0] b, output [15:0] y);
  reg [15:0] acc;
  always @(posedge clk) acc <= acc + a * b;
  assign y = acc;
endmodule
"""


@pytest.fixture(scope="module")
def tiny_sns():
    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs()
               if e.name in ("gpio16", "piecewise8", "mergesort8", "sodor32",
                             "icenet64", "conv3x3")]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=40, seed=0),
              circuitformer_config=TINY_CF,
              training_config=TrainingConfig(circuitformer_epochs=4,
                                             aggregator_epochs=60))
    sns.fit(records, synthesizer=synth)
    return sns, records


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_sns, tmp_path):
        sns, records = tiny_sns
        path = tmp_path / "model.npz"
        save_sns(sns, path)
        loaded = load_sns(path)
        for record in records[:3]:
            a = sns.predict(record.graph)
            b = loaded.predict(record.graph)
            assert a.timing_ps == pytest.approx(b.timing_ps)
            assert a.area_um2 == pytest.approx(b.area_um2)
            assert a.power_mw == pytest.approx(b.power_mw)

    def test_loaded_sampler_config(self, tiny_sns, tmp_path):
        sns, _ = tiny_sns
        path = tmp_path / "model.npz"
        save_sns(sns, path)
        loaded = load_sns(path)
        assert loaded.sampler.k == sns.sampler.k
        assert loaded.sampler.max_paths == sns.sampler.max_paths

    def test_refuses_unfitted(self, tmp_path):
        sns = SNS(circuitformer_config=TINY_CF)
        with pytest.raises(ValueError):
            save_sns(sns, tmp_path / "nope.npz")


class TestCLI:
    def test_synth_command(self, tmp_path, capsys):
        design = tmp_path / "mac.v"
        design.write_text(MAC_V)
        assert main(["synth", str(design), "--effort", "low"]) == 0
        out = capsys.readouterr().out
        assert "timing:" in out and "area:" in out and "power:" in out

    def test_paths_command(self, tmp_path, capsys):
        design = tmp_path / "mac.v"
        design.write_text(MAC_V)
        assert main(["paths", str(design), "-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "mul16" in out

    def test_predict_command(self, tiny_sns, tmp_path, capsys):
        sns, _ = tiny_sns
        model = tmp_path / "model.npz"
        save_sns(sns, model)
        design = tmp_path / "mac.v"
        design.write_text(MAC_V)
        assert main(["predict", str(model), str(design)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out

    def test_predict_many_files_with_cache_dir(self, tiny_sns, tmp_path, capsys):
        sns, _ = tiny_sns
        model = tmp_path / "model.npz"
        save_sns(sns, model)
        designs = []
        for i in range(2):
            design = tmp_path / f"mac{i}.v"
            design.write_text(MAC_V)
            designs.append(str(design))
        cache_dir = tmp_path / "cache"
        assert main(["predict", str(model), *designs,
                     "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count("timing:") == 2
        assert "misses" in out
        # Second invocation builds a fresh process-level cache but hits disk.
        assert main(["predict", str(model), *designs,
                     "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 disk hits" in out  # identical files share one entry

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCLIReportExport:
    def test_report_command(self, tmp_path, capsys):
        design = tmp_path / "mac.v"
        design.write_text(MAC_V)
        assert main(["report", str(design)]) == 0
        out = capsys.readouterr().out
        assert "-- timing" in out and "-- area --" in out and "-- power --" in out

    def test_export_list(self, capsys):
        assert main(["export", "--list"]) == 0
        out = capsys.readouterr().out
        assert "lut128x8" in out and "stencil16" in out
        assert len(out.strip().splitlines()) == 41

    def test_export_roundtrips_through_frontend(self, tmp_path, capsys):
        out_file = tmp_path / "gpio.v"
        assert main(["export", "gpio16", str(out_file)]) == 0
        from repro.graphir import token_counts
        from repro.designs import get_design
        from repro.verilog import elaborate_source
        rebuilt = elaborate_source(out_file.read_text())
        original = get_design("gpio16").module.elaborate()
        strip_io = lambda c: {t: n for t, n in c.items() if not t.startswith("io")}
        assert strip_io(token_counts(rebuilt)) == strip_io(token_counts(original))

    def test_export_missing_args(self, capsys):
        assert main(["export"]) == 2

    def test_export_unknown_design(self):
        import pytest as _pytest
        with _pytest.raises(KeyError):
            main(["export", "warp-core", "/tmp/x.v"])
