"""Memoized instance elaboration must be node-for-node invisible.

Each (module, parameter binding, input shape) elaborates once; further
occurrences stamp the recorded template.  Every test compares the full
serialized graph against the unmemoized walk.
"""

import pytest

from repro.graphir import to_json
from repro.verilog.elaborator import (ElaborationMemo, elaborate,
                                      elaborate_source)
from repro.verilog.parser import parse_source

REPEATED = """
module adder #(parameter W = 8) (input [W-1:0] a, input [W-1:0] b,
                                 output [W-1:0] s);
  assign s = a + b;
endmodule

module lane #(parameter W = 8) (input [W-1:0] x, input [W-1:0] y,
                                output [W-1:0] z);
  wire [W-1:0] t;
  adder #(.W(W)) u0 (.a(x), .b(y), .s(t));
  adder #(.W(W)) u1 (.a(t), .b(x), .s(z));
endmodule

module top (input [31:0] in0, input [31:0] in1, output [31:0] out);
  wire [31:0] acc0, acc1, acc2, acc3;
  lane #(.W(32)) l0 (.x(in0), .y(in1), .z(acc0));
  lane #(.W(32)) l1 (.x(acc0), .y(in1), .z(acc1));
  lane #(.W(32)) l2 (.x(acc1), .y(in0), .z(acc2));
  lane #(.W(32)) l3 (.x(acc2), .y(acc1), .z(acc3));
  assign out = acc3;
endmodule
"""

GENERATE_FOR = """
module cell #(parameter W = 4) (input [W-1:0] d, output [W-1:0] q);
  assign q = d ^ (d >> 1);
endmodule
module gtop (input [15:0] din, output [15:0] dout);
  wire [15:0] s0;
  wire [15:0] t0;
  genvar i;
  assign s0 = din;
  generate
    for (i = 0; i < 4; i = i + 1) begin : g
      cell #(.W(16)) c (.d(s0), .q(t0));
    end
  endgenerate
  assign dout = t0;
endmodule
"""

PARAM_OVERRIDES = """
module a #(parameter W = 4) (input [W-1:0] x, output [W-1:0] y);
  assign y = x + 1;
endmodule
module t (input [7:0] p, output [7:0] q, output [3:0] r);
  a #(.W(8)) u0 (.x(p), .y(q));
  a #(.W(4)) u1 (.x(p[3:0]), .y(r));
endmodule
"""

REGISTERED = """
module stage #(parameter W = 8) (input clk, input [W-1:0] d,
                                 output [W-1:0] q);
  reg [W-1:0] state;
  always @(posedge clk) begin
    state <= d + state;
  end
  assign q = state;
endmodule
module rtop (input clk, input [7:0] din, output [7:0] dout);
  wire [7:0] m0, m1;
  stage #(.W(8)) s0 (.clk(clk), .d(din), .q(m0));
  stage #(.W(8)) s1 (.clk(clk), .d(m0), .q(m1));
  assign dout = m1;
endmodule
"""


class TestMemoParity:
    @pytest.mark.parametrize("src,top", [
        (REPEATED, "top"),
        (GENERATE_FOR, "gtop"),
        (PARAM_OVERRIDES, "t"),
        (REGISTERED, "rtop"),
    ])
    def test_memoized_equals_fresh(self, src, top):
        ref = elaborate_source(src, top, memo=False)
        memoized = elaborate_source(src, top, memo=True)
        assert to_json(memoized) == to_json(ref)

    def test_repeated_instances_hit_the_memo(self):
        memo = ElaborationMemo()
        elaborate_source(REPEATED, "top", memo=memo)
        # lane x4 (1 miss + 3 stamps) and adder x2 inside the one fresh
        # lane (1 miss + 1 stamp).
        assert memo.misses == 2
        assert memo.hits == 4

    def test_param_overrides_keep_distinct_templates(self):
        memo = ElaborationMemo()
        elaborate_source(PARAM_OVERRIDES, "t", memo=memo)
        assert memo.misses == 2
        assert memo.hits == 0

    def test_cross_call_reuse_with_shared_file(self):
        file = parse_source(REPEATED)
        ref = elaborate(file, "top", memo=False)
        memo = ElaborationMemo()
        elaborate(file, "top", memo=memo)
        misses_after_first = memo.misses
        second = elaborate(file, "top", memo=memo)
        assert to_json(second) == to_json(ref)
        assert memo.misses == misses_after_first  # all instances stamped

    def test_registered_instances_replay_pending_regs(self):
        # The template must carry reg_declare bookkeeping: a stamped
        # stage's register still accepts its connect_next edge.
        memo = ElaborationMemo()
        g = elaborate_source(REGISTERED, "rtop", memo=memo)
        assert memo.hits == 1
        ref = elaborate_source(REGISTERED, "rtop", memo=False)
        assert to_json(g) == to_json(ref)


class TestCompiledElaboration:
    @pytest.mark.parametrize("src,top", [
        (REPEATED, "top"),
        (GENERATE_FOR, "gtop"),
        (REGISTERED, "rtop"),
    ])
    def test_builder_target_equals_dict_graph(self, src, top):
        ref = elaborate_source(src, top, memo=False)
        cg = elaborate_source(src, top, compiled=True)
        assert to_json(cg.to_circuit_graph()) == to_json(ref)
