"""Parity tests for the array-compiled synthesis engine.

Every test here asserts *exact* float equality between the vectorized
kernels (``repro.synth.engine``) and the reference implementations they
replace — the array engine's contract is bit-identical labels, not
approximately-equal ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import (build_design_dataset, build_design_dataset_profiled,
                           sample_path_dataset)
from repro.designs import standard_designs
from repro.graphir import CircuitGraph, Vocabulary
from repro.synth import (FREEPDK15, MappedNetlist, SynthesisCache, Synthesizer,
                         array_sta, static_timing_analysis,
                         synthesis_cache_key)
from repro.synth.engine import synthesize_path_batch

COMB_TYPES = ("mux", "not", "and", "or", "xor", "sh", "add", "mul", "eq",
              "lgt", "div", "mod", "reduce_and", "reduce_or", "reduce_xor")
WIDTHS = (4, 8, 16, 32, 64)


def random_netlist(rng: np.random.Generator, num_cells: int = 40,
                   seq_fraction: float = 0.3) -> MappedNetlist:
    """A random legal netlist: forward-only edges, fan-in >= 2 where the
    topology allows, a mix of sequential and combinational cells."""
    net = MappedNetlist(name="random")
    for i in range(num_cells):
        if i < 2 or rng.random() < seq_fraction:
            kind = "dff" if rng.random() < 0.7 else "io"
            net.add_cell(kind, int(rng.choice(WIDTHS)), is_sequential=True)
        else:
            net.add_cell(str(rng.choice(COMB_TYPES)), int(rng.choice(WIDTHS)))
    for cid, cell in net.cells.items():
        if cid == 0:
            continue
        fanin = 1 if cell.is_sequential else min(cid, int(rng.integers(2, 5)))
        for src in rng.choice(cid, size=fanin, replace=False):
            net.add_edge(int(src), cid)
    return net


def assert_reports_equal(ref, arr):
    assert arr.critical_path_ps == ref.critical_path_ps
    assert arr.critical_cells == ref.critical_cells
    assert arr.arrival == ref.arrival


def assert_results_equal(ref, arr):
    assert arr.design == ref.design
    assert arr.timing_ps == ref.timing_ps
    assert arr.area_um2 == ref.area_um2
    assert arr.power_mw == ref.power_mw
    assert arr.num_cells == ref.num_cells
    assert arr.gate_count == ref.gate_count


# ---------------------------------------------------------------------- #
# STA parity
# ---------------------------------------------------------------------- #
def test_array_sta_matches_reference_on_random_netlists():
    rng = np.random.default_rng(7)
    for trial in range(25):
        net = random_netlist(rng, num_cells=int(rng.integers(5, 80)),
                             seq_fraction=float(rng.uniform(0.1, 0.6)))
        assert_reports_equal(static_timing_analysis(net, FREEPDK15),
                             array_sta(net, FREEPDK15))


def test_array_sta_matches_after_gate_sizing_scales():
    # Non-unit delay/area scales exercise the delay_scale vector path.
    rng = np.random.default_rng(11)
    for _ in range(10):
        net = random_netlist(rng)
        for cell in net.cells.values():
            cell.delay_scale = float(rng.uniform(0.7, 1.2))
        assert_reports_equal(static_timing_analysis(net, FREEPDK15),
                             array_sta(net, FREEPDK15))


def test_array_sta_all_register_netlist():
    # Degenerate case: no combinational cell, endpoint falls back to the
    # max arrival across registers.
    net = MappedNetlist(name="regs")
    for _ in range(6):
        net.add_cell("dff", 16, is_sequential=True)
    for i in range(1, 6):
        net.add_edge(i - 1, i)
    assert_reports_equal(static_timing_analysis(net, FREEPDK15),
                         array_sta(net, FREEPDK15))


def test_array_sta_single_cell():
    net = MappedNetlist(name="one")
    net.add_cell("add", 8)
    assert_reports_equal(static_timing_analysis(net, FREEPDK15),
                         array_sta(net, FREEPDK15))


def test_array_sta_rejects_combinational_loop():
    net = MappedNetlist(name="loop")
    a = net.add_cell("add", 8)
    b = net.add_cell("xor", 8)
    net.add_edge(a, b)
    net.add_edge(b, a)
    with pytest.raises(ValueError, match="combinational loop"):
        static_timing_analysis(net, FREEPDK15)
    with pytest.raises(ValueError, match="combinational loop"):
        array_sta(net, FREEPDK15)


# ---------------------------------------------------------------------- #
# Full-synthesizer parity (incremental sizing + fusion pre-scan)
# ---------------------------------------------------------------------- #
def random_graph(rng: np.random.Generator, num_nodes: int = 30) -> CircuitGraph:
    graph = CircuitGraph("random")
    for i in range(num_nodes):
        if i < 2 or rng.random() < 0.25:
            graph.add_node("dff" if rng.random() < 0.7 else "io",
                           int(rng.choice(WIDTHS)))
        else:
            graph.add_node(str(rng.choice(COMB_TYPES)), int(rng.choice(WIDTHS)))
    for nid in range(1, num_nodes):
        for src in rng.choice(nid, size=min(nid, int(rng.integers(1, 4))),
                              replace=False):
            graph.add_edge(int(src), nid)
    return graph


@pytest.mark.parametrize("effort", ["low", "medium", "high"])
def test_synthesizer_engines_bit_identical_on_random_graphs(effort):
    rng = np.random.default_rng(23)
    for _ in range(6):
        graph = random_graph(rng, num_nodes=int(rng.integers(10, 60)))
        ref = Synthesizer(effort=effort, engine="reference").synthesize(graph)
        arr = Synthesizer(effort=effort, engine="array").synthesize(graph)
        assert_results_equal(ref, arr)


def test_synthesizer_engines_bit_identical_on_registry_designs():
    small = [e for e in standard_designs()
             if e.module.elaborate().num_nodes < 500][:8]
    for entry in small:
        graph = entry.module.elaborate()
        ref = Synthesizer(effort="medium", engine="reference").synthesize(graph)
        arr = Synthesizer(effort="medium", engine="array").synthesize(graph)
        assert_results_equal(ref, arr)


def test_invalid_engine_rejected():
    with pytest.raises(ValueError, match="engine"):
        Synthesizer(engine="gpu")


# ---------------------------------------------------------------------- #
# Batched path labeling
# ---------------------------------------------------------------------- #
def test_path_batch_matches_per_path_for_every_single_token():
    synth = Synthesizer()
    tokens = list(Vocabulary.standard().tokens)
    batch = synth.synthesize_path_batch([[t] for t in tokens])
    for token, got in zip(tokens, batch):
        want = synth.synthesize_path([token])
        assert got == want


def test_path_batch_matches_per_path_on_random_chains():
    synth = Synthesizer()
    tokens = list(Vocabulary.standard().tokens)
    rng = np.random.default_rng(3)
    chains = [[tokens[i] for i in rng.integers(0, len(tokens),
                                               int(rng.integers(1, 13)))]
              for _ in range(120)]
    batch = synth.synthesize_path_batch(chains)
    for chain, got in zip(chains, batch):
        assert got == synth.synthesize_path(list(chain))


def test_path_batch_mac_fusion_order_sensitivity():
    # The paper's own example: [mul, add] fuses, [add, mul] does not.
    synth = Synthesizer()
    fwd, rev = synth.synthesize_path_batch(
        [["io16", "mul16", "add16", "io16"], ["io16", "add16", "mul16", "io16"]])
    assert fwd == synth.synthesize_path(["io16", "mul16", "add16", "io16"])
    assert rev == synth.synthesize_path(["io16", "add16", "mul16", "io16"])
    assert fwd.area_um2 < rev.area_um2


def test_path_batch_validation():
    with pytest.raises(ValueError, match="at least one token"):
        synthesize_path_batch([[]], FREEPDK15)
    with pytest.raises(KeyError, match="not in vocabulary"):
        synthesize_path_batch([["add8", "warp9"]], FREEPDK15)
    assert synthesize_path_batch([], FREEPDK15) == []


def test_reference_engine_path_batch_is_per_path_loop():
    synth = Synthesizer(engine="reference")
    chains = [["io8", "add8"], ["mul16", "add16"]]
    assert synth.synthesize_path_batch(chains) == [
        synth.synthesize_path(list(c)) for c in chains]


def test_sample_path_dataset_uses_batch_identically():
    from repro.core.sampler import PathSampler

    entries = [e for e in standard_designs()
               if e.module.elaborate().num_nodes < 300][:4]
    records = build_design_dataset(entries, Synthesizer(effort="low"))
    sampler = PathSampler(max_paths=10)
    ref = sample_path_dataset(records, sampler,
                              Synthesizer(effort="low", engine="reference"))
    arr = sample_path_dataset(records, sampler, Synthesizer(effort="low"))
    assert arr == ref


# ---------------------------------------------------------------------- #
# Synthesis cache + parallel dataset builder
# ---------------------------------------------------------------------- #
def small_entries(limit=5):
    return [e for e in standard_designs()
            if e.module.elaborate().num_nodes < 300][:limit]


def test_synthesis_cache_round_trip(tmp_path):
    entries = small_entries(3)
    synth = Synthesizer(effort="low")
    cache = SynthesisCache(disk_dir=tmp_path / "synth")
    for entry in entries:
        graph = entry.module.elaborate()
        assert cache.get(graph, synth.library, synth.effort) is None
        result = synth.synthesize(graph)
        cache.put(graph, synth.library, synth.effort, result)
        hit = cache.get(graph, synth.library, synth.effort)
        assert_results_equal(result, hit)
    # A fresh cache instance on the same directory serves disk hits.
    fresh = SynthesisCache(disk_dir=tmp_path / "synth")
    graph = entries[0].module.elaborate()
    assert fresh.get(graph, synth.library, synth.effort) is not None
    assert fresh.stats.disk_hits == 1


def test_synthesis_cache_key_sensitivity():
    graph = small_entries(1)[0].module.elaborate()
    base = synthesis_cache_key(graph, FREEPDK15, "medium")
    assert synthesis_cache_key(graph, FREEPDK15, "high") != base
    assert synthesis_cache_key(graph, FREEPDK15, "medium",
                               activity={0: 0.5}) != base
    assert synthesis_cache_key(graph, FREEPDK15, "medium") == base


def test_build_design_dataset_workers_and_cache_bit_identical(tmp_path):
    entries = small_entries(5)
    ref = build_design_dataset(entries, Synthesizer(effort="low",
                                                    engine="reference"))
    cold = build_design_dataset(entries, Synthesizer(effort="low"),
                                num_workers=1, cache_dir=tmp_path / "c")
    warm = build_design_dataset(entries, Synthesizer(effort="low"),
                                num_workers=2, cache_dir=tmp_path / "c")
    pool = build_design_dataset(entries, Synthesizer(effort="low"),
                                num_workers=2)
    for records in (cold, warm, pool):
        assert len(records) == len(ref)
        for got, want in zip(records, ref):
            assert got.name == want.name and got.family == want.family
            assert got.timing_ps == want.timing_ps
            assert got.area_um2 == want.area_um2
            assert got.power_mw == want.power_mw


def test_build_design_dataset_profile(tmp_path):
    entries = small_entries(4)
    records, cold = build_design_dataset_profiled(
        entries, Synthesizer(effort="low"), cache_dir=tmp_path / "c")
    _, warm = build_design_dataset_profiled(
        entries, Synthesizer(effort="low"), cache_dir=tmp_path / "c")
    assert cold.num_designs == len(records) == len(entries)
    assert cold.cache_misses == len(entries) and cold.cache_hits == 0
    assert warm.cache_hits == len(entries) and warm.cache_misses == 0
    assert set(cold.synth_seconds) == {r.name for r in records}
    assert cold.wall_s > 0 and cold.designs_per_sec > 0
    assert "designs" in cold.format() and "cache" in warm.format()


def test_build_design_dataset_profile_respects_max_nodes():
    entries = small_entries(4)
    records, profile = build_design_dataset_profiled(
        entries, Synthesizer(effort="low"), max_nodes=1)
    assert records == [] and profile.num_designs == 0
    assert profile.cache_hits == 0 and profile.cache_misses == 0
    assert profile.synth_seconds == {}
