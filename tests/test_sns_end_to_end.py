"""End-to-end tests for the SNS predictor (fit + predict, Figure 1/4 flows)."""

import numpy as np
import pytest

from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig, rrse
from repro.datagen import build_design_dataset, train_test_split_by_family
from repro.designs import standard_designs
from repro.synth import Synthesizer

TINY_CF = CircuitformerConfig(embedding_size=24, dim_feedforward=48, max_input_size=64)
FAST_TRAIN = TrainingConfig(circuitformer_epochs=8, aggregator_epochs=150)


@pytest.fixture(scope="module")
def fitted_sns():
    """A small trained SNS over a subset of the design dataset."""
    synth = Synthesizer(effort="low")
    records = build_design_dataset(standard_designs(), synth, max_nodes=800)
    train, test = train_test_split_by_family(records, 0.5, seed=0)
    sns = SNS(sampler=PathSampler(k=5, max_paths=50, seed=0),
              circuitformer_config=TINY_CF, training_config=FAST_TRAIN)
    sns.fit(train, synthesizer=synth)
    return sns, train, test


class TestFit:
    def test_history_populated(self, fitted_sns):
        sns, _, _ = fitted_sns
        assert len(sns.circuitformer_history) == FAST_TRAIN.circuitformer_epochs
        assert len(sns.aggregator_curve) == FAST_TRAIN.aggregator_epochs

    def test_training_reduces_loss(self, fitted_sns):
        sns, _, _ = fitted_sns
        cf = sns.circuitformer_history
        assert cf[-1].train_loss < cf[0].train_loss
        agg = sns.aggregator_curve
        assert agg[-1] < agg[0]

    def test_predict_before_fit_raises(self):
        sns = SNS(circuitformer_config=TINY_CF)
        from repro.designs import get_design
        with pytest.raises(RuntimeError):
            sns.predict(get_design("gpio16").module.elaborate())


class TestPredict:
    def test_prediction_fields(self, fitted_sns):
        sns, _, test = fitted_sns
        pred = sns.predict(test[0].graph)
        assert pred.design == test[0].graph.name
        assert pred.timing_ps > 0
        assert pred.area_um2 > 0
        assert pred.power_mw > 0
        assert pred.runtime_s > 0
        assert pred.num_paths > 0

    def test_accepts_module_directly(self, fitted_sns):
        sns, _, _ = fitted_sns
        from repro.designs import PiecewiseApprox
        pred = sns.predict(PiecewiseApprox(segments=4))
        assert pred.area_um2 > 0

    def test_critical_path_is_max_timing_path(self, fitted_sns):
        sns, _, test = fitted_sns
        graph = test[0].graph
        pred = sns.predict(graph)
        assert pred.critical_path is not None
        # critical path lives in the design
        for nid in pred.critical_path.node_ids:
            assert nid in graph

    def test_deterministic_prediction(self, fitted_sns):
        sns, _, test = fitted_sns
        p1 = sns.predict(test[0].graph)
        p2 = sns.predict(test[0].graph)
        assert p1.timing_ps == p2.timing_ps
        assert p1.area_um2 == p2.area_um2

    def test_better_than_wild_guess_on_train_set(self, fitted_sns):
        """The model must at least fit its own training designs (area)."""
        sns, train, _ = fitted_sns
        preds = np.array([sns.predict(r.graph).area_um2 for r in train])
        actual = np.array([r.labels[1] for r in train])
        assert rrse(np.log1p(preds), np.log1p(actual)) < 1.0

    def test_activity_coefficients_reduce_power(self, fitted_sns):
        sns, _, test = fitted_sns
        graph = test[0].graph
        base = sns.predict(graph)
        gated = sns.predict(graph, activity={
            nid: 0.001 for nid in graph.sequential_ids()})
        assert gated.power_mw <= base.power_mw

    def test_derived_properties(self, fitted_sns):
        sns, _, test = fitted_sns
        pred = sns.predict(test[0].graph)
        assert pred.area_mm2 == pytest.approx(pred.area_um2 * 1e-6)
        assert pred.frequency_ghz == pytest.approx(1000.0 / pred.timing_ps)


class TestSpeed:
    def test_sns_faster_than_synthesizer_on_big_design(self, fitted_sns):
        """The Figure 7 shape: SNS inference beats synthesis wall-clock."""
        import time
        sns, _, _ = fitted_sns
        from repro.designs import get_design
        graph = get_design("gemmini16x16").module.elaborate()
        synth = Synthesizer(effort="high")
        t0 = time.perf_counter()
        synth.synthesize(graph)
        synth_time = time.perf_counter() - t0
        pred = sns.predict(graph)
        assert pred.runtime_s < synth_time


class TestUncertainty:
    def test_spread_reported_per_target(self, fitted_sns):
        sns, _, test = fitted_sns
        pred = sns.predict(test[0].graph)
        assert set(pred.spread) == {"timing", "area", "power"}
        for value in pred.spread.values():
            assert value >= 1.0

    def test_confidence_interval_brackets_prediction(self, fitted_sns):
        sns, _, test = fitted_sns
        pred = sns.predict(test[0].graph)
        lo, hi = pred.confidence_interval("area")
        assert lo <= pred.area_um2 <= hi

    def test_wider_sigma_wider_band(self, fitted_sns):
        sns, _, test = fitted_sns
        pred = sns.predict(test[0].graph)
        lo1, hi1 = pred.confidence_interval("timing", sigmas=1.0)
        lo3, hi3 = pred.confidence_interval("timing", sigmas=3.0)
        assert lo3 <= lo1 and hi3 >= hi1
