"""Parity tests for the compiled (CSR) GraphIR layer.

The contract under test: a :class:`CompiledGraph` is *exactly* the
dict :class:`CircuitGraph` in array form — same statistics, same
fingerprint, same adjacency (content and order), same serialized
structure — across every registry design.
"""

import numpy as np
import pytest

from repro.designs import standard_designs
from repro.graphir import (CircuitGraph, CompiledGraph, GraphBuilder,
                           Vocabulary, as_compiled, compile_graph,
                           stats_vector, structural_features, to_json,
                           token_counts, weighted_features)
from repro.runtime.fingerprint import fingerprint_graph

DESIGNS = standard_designs()


@pytest.fixture(scope="module")
def elaborated():
    return [(e.name, e.module.elaborate()) for e in DESIGNS]


class TestCompiledParity:
    def test_stats_match_reference_on_every_registry_design(self, elaborated):
        vocab = Vocabulary.standard()
        for name, graph in elaborated:
            cg = compile_graph(graph)
            assert token_counts(cg) == token_counts(graph), name
            np.testing.assert_array_equal(
                stats_vector(cg, vocab), stats_vector(graph, vocab), err_msg=name)
            np.testing.assert_array_equal(
                structural_features(cg), structural_features(graph), err_msg=name)
            np.testing.assert_array_equal(
                weighted_features(cg), weighted_features(graph), err_msg=name)

    def test_fingerprint_matches_reference(self, elaborated):
        for name, graph in elaborated:
            cg = compile_graph(graph)
            assert fingerprint_graph(cg) == fingerprint_graph(graph), name

    def test_adjacency_and_roundtrip(self, elaborated):
        for name, graph in elaborated:
            cg = compile_graph(graph)
            for nid in graph.node_ids():
                assert cg.successors(nid) == graph.successors(nid), name
            assert cg.source_ids() == graph.source_ids(), name
            assert to_json(cg.to_circuit_graph()) == to_json(graph), name

    def test_payload_roundtrip(self, elaborated):
        _, graph = elaborated[0]
        cg = compile_graph(graph)
        clone = CompiledGraph.from_payload(cg.to_payload())
        assert clone.fingerprint() == cg.fingerprint()
        assert clone.name == cg.name
        assert clone.labels == cg.labels

    def test_compile_is_memoized_per_instance(self, elaborated):
        _, graph = elaborated[0]
        assert compile_graph(graph) is compile_graph(graph)

    def test_as_compiled_dispatch(self, elaborated):
        _, graph = elaborated[0]
        cg = as_compiled(graph)
        assert isinstance(cg, CompiledGraph)
        assert as_compiled(cg) is cg
        # Module input routes through elaborate_compiled().
        entry = DESIGNS[0]
        cg2 = as_compiled(entry.module)
        assert cg2.fingerprint() == fingerprint_graph(entry.module.elaborate())


class TestGraphBuilder:
    def test_builder_elaboration_identical_to_dict(self):
        # Every registry Module built twice — once on the dict graph,
        # once on the flat builder — must produce the same structure.
        for entry in DESIGNS:
            ref = entry.module.elaborate()
            cg = entry.module.elaborate_compiled()
            assert to_json(cg.to_circuit_graph()) == to_json(ref), entry.name

    def test_builder_validates_nodes_and_edges(self):
        b = GraphBuilder("t")
        with pytest.raises(ValueError):
            b.add_node("nonsense", 8)
        with pytest.raises(ValueError):
            b.add_node("add", 0)
        a = b.add_node("io", 8)
        with pytest.raises(KeyError):
            b.add_edge(a, a + 1)

    def test_builder_dedups_edges(self):
        b = GraphBuilder("t")
        a = b.add_node("io", 8)
        c = b.add_node("add", 8)
        b.add_edge(a, c)
        b.add_edge(a, c)
        assert b.compile().num_edges == 1


class TestCompileGuards:
    def test_noncontiguous_ids_rejected(self):
        g = CircuitGraph("gap")
        g.add_node("io", 8)
        g.add_node("io", 8)
        del g._nodes[0]  # leave node id 1 at position 0
        with pytest.raises(ValueError):
            compile_graph(g, memo=False)

    def test_memo_invalidated_by_mutation(self):
        g = CircuitGraph("grow")
        a = g.add_node("io", 8)
        cg1 = compile_graph(g)
        b = g.add_node("dff", 8)
        g.add_edge(a, b)
        cg2 = compile_graph(g)
        assert cg2 is not cg1
        assert cg2.num_nodes == 2 and cg2.num_edges == 1
