"""Tests for the delta-elaboration front end (``DeltaElaborator``).

The sweeps the DSE engine drives must get graphs *identical* to fresh
elaboration — delta-elaboration is a cache strategy, never an
approximation — and unsound ``STRUCTURAL_PARAMS`` declarations must
fail loudly instead of silently serving a neighbor's graph.
"""

import pytest

from repro.hdl import Circuit, Module
from repro.runtime import DeltaElaborator, FrontendCache
from repro.verilog import emit_verilog


class Blinker(Module):
    """Structure depends on ``width`` only; ``label`` is metadata."""

    STRUCTURAL_PARAMS = ("width",)

    def __init__(self, width: int = 8, label: str = "a"):
        super().__init__(width=width, label=label)

    def build(self, c: Circuit) -> None:
        a = c.input("a", self.params["width"])
        b = c.input("b", self.params["width"])
        c.output("y", c.reg(a + b, "acc"))


class BadBlinker(Module):
    """Unsound: claims ``width`` is non-structural, but it isn't."""

    STRUCTURAL_PARAMS = ("label",)

    def __init__(self, width: int = 8, label: str = "a"):
        super().__init__(width=width, label=label)

    def build(self, c: Circuit) -> None:
        a = c.input("a", self.params["width"])
        c.output("y", c.reg(a + a, "acc"))


class TestModuleSweeps:
    def test_graphs_identical_to_fresh_elaboration(self):
        delta = DeltaElaborator()
        for width in (8, 16, 24):
            cached = delta.compile(Blinker(width=width))
            fresh = Blinker(width=width).elaborate_compiled()
            assert cached.fingerprint() == fresh.fingerprint()

    def test_repeat_config_hits_graph_tier(self):
        delta = DeltaElaborator()
        delta.compile(Blinker(width=8))
        delta.compile(Blinker(width=8))
        assert delta.stats["compiles"] == 1
        assert delta.stats["graph_hits"] == 1

    def test_non_structural_axis_compiles_once(self):
        delta = DeltaElaborator()
        graphs = [delta.compile(Blinker(width=8, label=lbl))
                  for lbl in ("a", "b", "c")]
        assert delta.stats["compiles"] == 1
        assert delta.stats["projection_hits"] == 2
        # The sound projection verifies exactly once per class.
        assert delta.stats["verified_projections"] == 1
        assert len({g.fingerprint() for g in graphs}) == 1

    def test_structural_axis_still_distinguished(self):
        delta = DeltaElaborator()
        g8 = delta.compile(Blinker(width=8))
        g16 = delta.compile(Blinker(width=16))
        assert g8.fingerprint() != g16.fingerprint()
        assert delta.stats["compiles"] == 2

    def test_unsound_projection_detected(self):
        delta = DeltaElaborator()
        delta.compile(BadBlinker(width=8))
        with pytest.raises(ValueError, match="STRUCTURAL_PARAMS is unsound"):
            delta.compile(BadBlinker(width=16))

    def test_unknown_structural_name_rejected(self):
        class Typo(Blinker):
            STRUCTURAL_PARAMS = ("widht",)

        with pytest.raises(ValueError, match="unknown"):
            DeltaElaborator().compile(Typo(width=8))

    def test_verification_can_be_disabled(self):
        delta = DeltaElaborator(verify_projections=False)
        delta.compile(BadBlinker(width=8))
        # Wrong by construction, but the check is explicitly off.
        g = delta.compile(BadBlinker(width=16))
        assert delta.stats["verified_projections"] == 0
        assert g is not None

    def test_shares_supplied_frontend_cache(self):
        cache = FrontendCache()
        a = DeltaElaborator(cache=cache)
        b = DeltaElaborator(cache=cache)
        a.compile(Blinker(width=8))
        b.compile(Blinker(width=8))
        assert b.stats["compiles"] == 0
        assert b.stats["graph_hits"] == 1


class TestVerilogSweeps:
    def _source(self, width: int) -> str:
        return emit_verilog(Blinker(width=width).elaborate())

    def test_identical_to_fresh_compile(self):
        from repro.runtime import compile_source

        delta = DeltaElaborator()
        src = self._source(12)
        assert delta.compile_source(src).fingerprint() \
            == compile_source(src).fingerprint()

    def test_repeat_source_hits_graph_tier(self):
        delta = DeltaElaborator()
        src = self._source(8)
        delta.compile_source(src)
        delta.compile_source(src)
        assert delta.stats["compiles"] == 1
        assert delta.stats["graph_hits"] == 1

    def test_ast_cached_across_distinct_graph_keys(self):
        delta = DeltaElaborator()
        # An unused define changes the graph cache key but leaves the
        # preprocessed text unchanged, so the source parses only once.
        src = self._source(8)
        delta.compile_source(src)
        delta.compile_source(src, defines={"UNUSED": "1"})
        assert delta.stats["compiles"] == 2
        assert delta.stats["ast_hits"] == 1

    def test_template_hits_across_configs(self):
        """Sibling configurations stamp shared instances from the memo."""
        delta = DeltaElaborator()
        child = """
module add4(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = a + b;
endmodule
"""

        def top(n):
            ports = ",\n  ".join(
                f"input [3:0] a{i}, input [3:0] b{i}, output [3:0] y{i}"
                for i in range(n))
            insts = "\n".join(
                f"  add4 u{i}(.a(a{i}), .b(b{i}), .y(y{i}));"
                for i in range(n))
            return f"module top(\n  {ports}\n);\n{insts}\nendmodule\n{child}"

        g2 = delta.compile_source(top(2), top="top")
        hits_after_first = delta.template_hits
        g3 = delta.compile_source(top(3), top="top")
        # The second config re-stamps add4 from the shared memo.
        assert delta.template_hits > hits_after_first
        assert g2.fingerprint() != g3.fingerprint()

        # And the memo'd graph matches a cold elaboration exactly.
        fresh = DeltaElaborator().compile_source(top(3), top="top")
        assert g3.fingerprint() == fresh.fingerprint()
