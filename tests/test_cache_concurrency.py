"""Thread-safety of the cache disk tiers under concurrent serve workers.

The serving tier points many worker threads (and, for datagen, many
processes) at one cache directory.  These tests hammer the shared
tiers — :class:`repro.runtime.PredictionCache` and the
:class:`FrontendCache` / :class:`SynthesisCache` built on it — and pin
the two properties that make that safe:

- **atomic publish**: every read returns either a miss or one writer's
  complete payload, never torn JSON, even with many threads writing the
  same key;
- **corruption tolerance**: a partially-written or garbage entry (a
  crashed writer from before unique temp staging) reads as a miss and
  is healed by the next put.
"""

import json
import threading

from repro.designs import standard_designs
from repro.runtime import FrontendCache, PredictionCache
from repro.runtime.frontend import fingerprint_frontend_module
from repro.synth import SynthesisCache, Synthesizer


def _hammer(num_threads, fn):
    """Run ``fn(thread_index)`` on many threads; re-raise any failure."""
    errors = []
    barrier = threading.Barrier(num_threads)

    def run(i):
        barrier.wait()
        try:
            fn(i)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(num_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestPredictionCacheConcurrency:
    def test_same_key_many_writers(self, tmp_path):
        """Concurrent writers of one key publish atomically."""
        cache = PredictionCache(disk_dir=tmp_path)
        payload = {"timing_ps": 1.5, "blob": "x" * 4096}

        def work(i):
            for round_ in range(40):
                cache.put("sharedkey", payload)
                got = cache.get("sharedkey")
                assert got == payload

        _hammer(8, work)
        # Exactly one published file, no leaked temp staging files.
        files = list(tmp_path.rglob("*"))
        assert [p.name for p in files if p.suffix == ".tmp"] == []
        assert json.loads((tmp_path / "sh" / "sharedkey.json").read_text()) \
            == payload

    def test_distinct_keys_cross_readers(self, tmp_path):
        """Each thread writes its keys while reading everyone else's."""
        cache = PredictionCache(max_entries=8, disk_dir=tmp_path)

        def payload_for(key):
            return {"key": key, "pad": key * 50}

        def work(i):
            for round_ in range(30):
                mine = f"key-{i}-{round_}"
                cache.put(mine, payload_for(mine))
                for j in range(8):
                    other = f"key-{j}-{round_}"
                    got = cache.get(other)
                    assert got is None or got == payload_for(other)

        _hammer(8, work)
        stats = cache.stats.as_dict()
        assert stats["memory_hits"] + stats["disk_hits"] > 0

    def test_two_processes_one_dir(self, tmp_path):
        """A second cache instance on the same dir sees published entries."""
        writer = PredictionCache(disk_dir=tmp_path)
        reader = PredictionCache(disk_dir=tmp_path)

        def work(i):
            for round_ in range(25):
                key = f"xk{i}-{round_}"
                writer.put(key, {"v": key})
                assert reader.get(key) == {"v": key}

        _hammer(6, work)

    def test_partial_entry_reads_as_miss_and_heals(self, tmp_path):
        """Torn/garbage disk entries tolerate: miss, then heal on put."""
        cache = PredictionCache(disk_dir=tmp_path)
        cache.put("goodkey", {"v": 1})
        path = tmp_path / "go" / "goodkey.json"
        assert path.is_file()

        fresh = PredictionCache(disk_dir=tmp_path)     # no memory tier copy
        path.write_text('{"v": 1')                     # torn mid-write
        assert fresh.get("goodkey") is None
        assert fresh.stats.misses == 1
        fresh.put("goodkey", {"v": 2})
        assert PredictionCache(disk_dir=tmp_path).get("goodkey") == {"v": 2}

    def test_clear_removes_staging_leftovers(self, tmp_path):
        cache = PredictionCache(disk_dir=tmp_path)
        cache.put("somekey", {"v": 1})
        leftover = tmp_path / "so" / ".crashed.1234.0.tmp"
        leftover.write_text("{partial")
        cache.clear(memory_only=False)
        assert not leftover.exists()
        assert cache.get("somekey") is None


class TestFrontendCacheConcurrency:
    def test_graph_tier_hammer(self, tmp_path):
        """Many threads compile/read the same designs via one disk dir."""
        entries = [e for e in standard_designs()
                   if e.name in ("gpio16", "gpio32", "piecewise8")]
        compiled = {e.name: e.module.elaborate_compiled() for e in entries}
        keys = {name: fingerprint_frontend_module(entries[i].module)
                for i, name in enumerate(compiled)}
        cache = FrontendCache(disk_dir=tmp_path)

        def work(i):
            for round_ in range(15):
                for name, cg in compiled.items():
                    if (i + round_) % 2:
                        cache.put_graph(keys[name], cg)
                    got = cache.get_graph(keys[name])
                    if got is not None:
                        assert got.fingerprint() == cg.fingerprint()

        _hammer(8, work)
        for name, cg in compiled.items():
            assert cache.get_graph(keys[name]).fingerprint() == cg.fingerprint()

    def test_path_tier_hammer(self, tmp_path):
        from repro.core import PathSampler

        entry = next(e for e in standard_designs() if e.name == "gpio16")
        cg = entry.module.elaborate_compiled()
        sampler = PathSampler(k=5, max_paths=20, seed=0)
        expected = sampler.sample(cg)
        cache = FrontendCache(disk_dir=tmp_path)

        def work(i):
            for _ in range(10):
                assert cache.sample(cg, sampler) == expected

        _hammer(8, work)


class TestSynthesisCacheConcurrency:
    def test_label_tier_hammer(self, tmp_path):
        entry = next(e for e in standard_designs() if e.name == "gpio16")
        graph = entry.module.elaborate()
        synth = Synthesizer(effort="low")
        library = synth.library
        result = synth.synthesize(graph)
        cache = SynthesisCache(disk_dir=tmp_path)

        def work(i):
            for _ in range(20):
                cache.put(graph, library, "low", result)
                got = cache.get(graph, library, "low")
                if got is not None:
                    assert got.timing_ps == result.timing_ps
                    assert got.area_um2 == result.area_um2
                    assert got.power_mw == result.power_mw

        _hammer(8, work)
        assert cache.get(graph, library, "low").timing_ps == result.timing_ps
