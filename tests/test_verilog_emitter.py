"""Round-trip tests: GraphIR -> Verilog -> GraphIR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import LookupTable, PiecewiseApprox, SIMDALU, SodorCore
from repro.graphir import CircuitGraph, token_counts
from repro.synth import Synthesizer
from repro.verilog import elaborate_source, emit_verilog

from tests.test_synth_properties import random_pipeline_graph


def _comparable(counts):
    """Drop io tokens: emission adds a clk port and keeps dead inputs."""
    return {t: n for t, n in counts.items() if not t.startswith("io")}


class TestEmitterBasics:
    def test_emit_contains_module_structure(self):
        g = CircuitGraph("mac8")
        a = g.add_node("io", 8)
        m = g.add_node("mul", 16)
        d = g.add_node("dff", 16)
        g.add_edge(a, m)
        g.add_edge(m, d)
        text = emit_verilog(g)
        assert text.startswith("module mac8(")
        assert "assign" in text and "always @(posedge clk)" in text
        assert text.rstrip().endswith("endmodule")

    def test_name_sanitized(self):
        g = CircuitGraph("8bad-name!")
        g.add_node("io", 8)
        assert emit_verilog(g).startswith("module m_8bad_name_(")

    def test_unknown_type_rejected(self):
        g = CircuitGraph()
        a = g.add_node("io", 8)
        # forge an invalid node by bypassing validation is not possible;
        # instead check the emitter handles every legal type
        for t in ("add", "mul", "mux", "not", "sh", "eq", "reduce_xor"):
            nid = g.add_node(t, 8)
            g.add_edge(a, nid)
        text = emit_verilog(g)
        assert text.count("assign") >= 7


ROUNDTRIP_DESIGNS = [
    SodorCore(xlen=32),
    SIMDALU(lanes=2, width=16),
    LookupTable(entries=8, width=8),
    PiecewiseApprox(segments=4, width=16),
]


@pytest.mark.parametrize("module", ROUNDTRIP_DESIGNS, ids=lambda m: type(m).__name__)
def test_roundtrip_preserves_tokens_for_real_designs(module):
    original = module.elaborate()
    text = emit_verilog(original)
    rebuilt = elaborate_source(text)
    assert _comparable(token_counts(original)) == _comparable(token_counts(rebuilt))


@pytest.mark.parametrize("module", ROUNDTRIP_DESIGNS[:2], ids=lambda m: type(m).__name__)
def test_roundtrip_preserves_synthesis_cost(module):
    """Emitted Verilog synthesizes to (nearly) the same result."""
    synth = Synthesizer(effort="low")
    original = synth.synthesize(module.elaborate())
    rebuilt = synth.synthesize(elaborate_source(emit_verilog(module.elaborate())))
    assert rebuilt.area_um2 == pytest.approx(original.area_um2, rel=0.05)
    assert rebuilt.timing_ps == pytest.approx(original.timing_ps, rel=0.10)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 3), st.integers(1, 3))
def test_property_roundtrip_random_graphs(seed, layers, width):
    g = random_pipeline_graph(np.random.default_rng(seed), layers, width)
    rebuilt = elaborate_source(emit_verilog(g))
    assert _comparable(token_counts(g)) == _comparable(token_counts(rebuilt))
