"""Tests for GraphIR JSON serialization and nn schedulers."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import SodorCore
from repro.graphir import CircuitGraph, from_json, load_graph, save_graph, to_json, token_counts
from repro.nn import (
    Adam,
    CosineAnnealingLR,
    EarlyStopping,
    Parameter,
    StepLR,
    WarmupLR,
)


class TestGraphJSON:
    def _mac(self):
        g = CircuitGraph("mac8")
        a = g.add_node("io", 8, "a")
        m = g.add_node("mul", 16, "m")
        d = g.add_node("dff", 16, "acc")
        g.add_edge(a, m)
        g.add_edge(m, d)
        g.add_edge(d, m)
        return g

    def test_roundtrip_preserves_everything(self):
        g = self._mac()
        g2 = from_json(to_json(g))
        assert g2.name == g.name
        assert token_counts(g2) == token_counts(g)
        assert sorted(g2.edges()) == sorted(g.edges())
        assert [n.label for n in g2.nodes()] == [n.label for n in g.nodes()]

    def test_node_ids_preserved(self):
        g = self._mac()
        g2 = from_json(to_json(g))
        for n in g.nodes():
            assert g2.node(n.node_id).node_type == n.node_type

    def test_real_design_roundtrip(self):
        g = SodorCore(xlen=32).elaborate()
        g2 = from_json(to_json(g))
        assert token_counts(g2) == token_counts(g)
        assert g2.num_edges == g.num_edges

    def test_file_roundtrip(self, tmp_path):
        g = self._mac()
        path = tmp_path / "mac.json"
        save_graph(g, path)
        g2 = load_graph(path)
        assert token_counts(g2) == token_counts(g)

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="format"):
            from_json(json.dumps({"format": "yosys", "version": 1}))

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            from_json(json.dumps({"format": "repro-graphir", "version": 99}))

    def test_json_is_valid_and_stable(self):
        g = self._mac()
        doc = json.loads(to_json(g))
        assert doc["format"] == "repro-graphir"
        assert to_json(g) == to_json(from_json(to_json(g)))


def _opt():
    return Adam([Parameter(np.zeros(2))], lr=1.0)


class TestSchedulers:
    def test_step_lr_decays(self):
        opt = _opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]
        assert opt.lr == 0.125

    def test_cosine_endpoints(self):
        opt = _opt()
        sched = CosineAnnealingLR(opt, t_max=10, min_lr=0.1)
        first = sched.get_lr(0)
        last = sched.get_lr(10)
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        sched = CosineAnnealingLR(_opt(), t_max=20)
        lrs = [sched.get_lr(e) for e in range(21)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_past_t_max(self):
        sched = CosineAnnealingLR(_opt(), t_max=5, min_lr=0.2)
        assert sched.get_lr(50) == pytest.approx(0.2)

    def test_warmup_ramps_then_delegates(self):
        opt = _opt()
        after = StepLR(opt, step_size=100)  # constant until epoch 100
        sched = WarmupLR(opt, warmup_epochs=4, after=after)
        lrs = [sched.step() for _ in range(6)]
        np.testing.assert_allclose(lrs[:4], [0.25, 0.5, 0.75, 1.0])
        assert lrs[4] == pytest.approx(1.0)

    def test_warmup_without_after_holds_base(self):
        sched = WarmupLR(_opt(), warmup_epochs=2)
        assert sched.get_lr(10) == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StepLR(_opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(_opt(), t_max=0)
        with pytest.raises(ValueError):
            WarmupLR(_opt(), warmup_epochs=0)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=3)
        values = [1.0, 0.9, 0.95, 0.95, 0.95]
        stops = [stopper.update(v) for v in values]
        assert stops == [False, False, False, False, True]
        assert stopper.best == 0.9
        assert stopper.best_epoch == 1

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(1.0)
        assert not stopper.update(1.1)
        assert not stopper.update(0.5)   # improvement resets the counter
        assert not stopper.update(0.6)
        assert stopper.update(0.6)

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        assert not stopper.update(1.0)
        assert stopper.update(0.95)  # < min_delta improvement doesn't count

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=30),
           st.integers(1, 5))
    def test_property_best_is_min(self, values, patience):
        stopper = EarlyStopping(patience=patience)
        for v in values:
            if stopper.update(v):
                break
        seen = values[:stopper._epoch + 1]
        assert stopper.best == min(seen)
