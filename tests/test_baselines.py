"""Tests for the linear and D-SAGE baselines."""

import numpy as np
import pytest

from repro.baselines import (
    DesignStatsLinearModel,
    DSAGEConfig,
    DSAGETimingModel,
    PathCountLinearModel,
    RidgeRegression,
    segment_mean_neighbors,
)
from repro.graphir import CircuitGraph
from repro.nn import Tensor


class TestRidge:
    def test_recovers_linear_relation(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w + 3.0
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-6)

    def test_multi_output(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        Y = np.stack([X[:, 0] * 2, X[:, 1] - 1], axis=1)
        model = RidgeRegression(alpha=1e-6).fit(X, Y)
        assert model.predict(X).shape == (50, 2)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.ones((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.ones(3), np.ones(3))


class TestPathCountLinear:
    def test_order_blindness(self):
        """The defining failure mode: permuted paths predict identically."""
        model = PathCountLinearModel()
        seqs = [("io8", "mul16", "add16", "dff16"), ("dff16", "add16", "dff16")]
        labels = np.array([[100.0, 10.0, 1.0], [50.0, 5.0, 0.5]])
        model.fit(seqs, labels)
        a = model.predict([("io8", "mul16", "add16", "dff16")])
        b = model.predict([("io8", "add16", "mul16", "dff16")])
        np.testing.assert_allclose(a, b)

    def test_fits_count_based_labels(self):
        rng = np.random.default_rng(0)
        seqs, labels = [], []
        for _ in range(60):
            n = int(rng.integers(1, 8))
            seqs.append(("dff16",) + ("add16",) * n + ("dff16",))
            labels.append([10.0 * n, 5.0 * n, n])
        model = PathCountLinearModel(alpha=1e-3).fit(seqs, np.array(labels))
        pred = model.predict([("dff16",) + ("add16",) * 4 + ("dff16",)])
        assert pred[0, 0] == pytest.approx(40.0, rel=0.35)
        # and the count -> label trend is monotone
        short = model.predict([("dff16", "add16", "dff16")])[0, 0]
        long = model.predict([("dff16",) + ("add16",) * 7 + ("dff16",)])[0, 0]
        assert short < pred[0, 0] < long

    def test_predictions_nonnegative(self):
        model = PathCountLinearModel().fit(
            [("io8", "dff8"), ("dff8", "add8", "dff8")],
            np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]]))
        assert (model.predict([("io8", "dff8")]) >= 0).all()


def chain_graph(n_adders: int, width: int = 16) -> CircuitGraph:
    g = CircuitGraph(f"chain{n_adders}")
    prev = g.add_node("dff", width)
    for _ in range(n_adders):
        node = g.add_node("add", width)
        g.add_edge(prev, node)
        prev = node
    end = g.add_node("dff", width)
    g.add_edge(prev, end)
    return g


class TestDesignStatsLinear:
    def test_fits_node_count_relation(self):
        graphs = [chain_graph(n) for n in range(1, 12)]
        labels = np.array([[10.0 * g.num_nodes] * 3 for g in graphs])
        model = DesignStatsLinearModel(alpha=1e-3).fit(graphs, labels)
        pred = model.predict([chain_graph(6)])
        assert pred[0, 0] == pytest.approx(80.0, rel=0.3)


class TestSegmentMean:
    def test_forward_mean(self):
        x = Tensor(np.array([[1.0], [3.0], [5.0]]))
        # edges: 0->2, 1->2
        out = segment_mean_neighbors(x, np.array([0, 1]), np.array([2, 2]), 3)
        np.testing.assert_allclose(out.data, [[0.0], [0.0], [2.0]])

    def test_backward(self):
        x = Tensor(np.array([[1.0], [3.0], [5.0]]), requires_grad=True)
        out = segment_mean_neighbors(x, np.array([0, 1]), np.array([2, 2]), 3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5], [0.5], [0.0]])

    def test_empty_edges(self):
        x = Tensor(np.ones((3, 2)))
        out = segment_mean_neighbors(x, np.zeros(0, dtype=int), np.zeros(0, dtype=int), 3)
        np.testing.assert_allclose(out.data, np.zeros((3, 2)))

    def test_mismatched_edges_raise(self):
        x = Tensor(np.ones((3, 2)))
        with pytest.raises(ValueError):
            segment_mean_neighbors(x, np.array([0]), np.array([1, 2]), 3)


class TestDSAGE:
    def test_learns_depth_to_timing(self):
        """Deeper adder chains take longer; D-SAGE should capture the trend."""
        graphs = [chain_graph(n) for n in (1, 2, 3, 5, 7, 9, 12, 15)]
        timings = np.array([50.0 + 20.0 * n for n in (1, 2, 3, 5, 7, 9, 12, 15)])
        model = DSAGETimingModel(DSAGEConfig(epochs=80, hidden_size=16, seed=0))
        model.fit(graphs, timings)
        preds = model.predict([chain_graph(2), chain_graph(14)])
        assert preds[1] > preds[0]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DSAGETimingModel().predict([chain_graph(2)])

    def test_too_few_graphs(self):
        with pytest.raises(ValueError):
            DSAGETimingModel().fit([chain_graph(1)], np.array([1.0]))

    def test_max_nodes_budget_respected(self):
        cfg = DSAGEConfig(epochs=2, max_nodes=5)
        graphs = [chain_graph(1), chain_graph(2), chain_graph(100)]
        model = DSAGETimingModel(cfg).fit(graphs, np.array([10.0, 20.0, 500.0]))
        # big graph excluded from training but still predictable
        assert model.predict([chain_graph(100)]).shape == (1,)

    def test_predictions_nonnegative(self):
        graphs = [chain_graph(n) for n in (1, 3, 5, 8)]
        model = DSAGETimingModel(DSAGEConfig(epochs=10, hidden_size=8))
        model.fit(graphs, np.array([10.0, 30.0, 50.0, 80.0]))
        assert (model.predict(graphs) >= 0).all()
