"""End-to-end tests for the asyncio prediction server (``repro.serve``).

Each test runs a real :class:`PredictionServer` on a background event
loop (:class:`ServerThread`) and talks to it over actual sockets with
the blocking :class:`ServeClient`, so the HTTP parsing, dispatch,
micro-batching, single-flight, admission control, and metrics paths are
all exercised exactly as the CLI and benchmark drive them.

The serving contract under test:

- ``/predict`` responses are **bit-identical** to direct ``SNS.predict``
  (the engine's batch-composition invariance, carried over HTTP);
- identical concurrent requests **single-flight** into one computation
  and one PredictionCache round trip;
- overload answers **429** (token bucket) and **503** (bounded queue)
  and **504** (deadline) instead of collapsing, and ``/metrics``
  reports every rejection.
"""

import threading
import time

import pytest

from repro.core import SNS, CircuitformerConfig, PathSampler, TrainingConfig
from repro.datagen import build_design_dataset
from repro.designs import standard_designs
from repro.runtime import fingerprint_model
from repro.serve import (PredictionServer, ServeClient, ServeConfig,
                         ServerThread, run_load)
from repro.synth import Synthesizer

TINY_CF = CircuitformerConfig(embedding_size=16, dim_feedforward=32,
                              max_input_size=64)
DESIGN_NAMES = ("gpio16", "conv3x3", "piecewise8")


@pytest.fixture(scope="module")
def tiny_sns():
    synth = Synthesizer(effort="low")
    entries = [e for e in standard_designs() if e.name in DESIGN_NAMES]
    records = build_design_dataset(entries, synth)
    sns = SNS(sampler=PathSampler(k=5, max_paths=40, seed=0),
              circuitformer_config=TINY_CF,
              training_config=TrainingConfig(circuitformer_epochs=2,
                                             aggregator_epochs=30),
              num_aggregators=1)
    sns.fit(records, synthesizer=synth)
    return sns, {e.name: e for e in entries}


def serve(sns, **overrides):
    """A started ServerThread for a fresh server over ``sns``."""
    defaults = dict(max_batch=8, max_wait_ms=5.0, workers=4)
    config = ServeConfig(**{**defaults, **overrides})
    server = PredictionServer(config)
    server.add_model(sns, "default")
    return server, ServerThread(server)


class TestHealthz:
    def test_round_trip_without_model(self):
        """The CI smoke path: bare server, no model, instant answer."""
        server = PredictionServer(ServeConfig())
        with ServerThread(server) as handle:
            client = ServeClient("127.0.0.1", handle.port, timeout=5.0)
            status, doc = client.get("/healthz")
            client.close()
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["models"] == []
        assert doc["uptime_s"] >= 0.0

    def test_unknown_routes(self, tiny_sns):
        sns, _ = tiny_sns
        _, thread = serve(sns)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            assert client.get("/nope")[0] == 404
            assert client.get("/predict")[0] == 405  # wrong method
            client.close()


class TestPredictParity:
    def test_bit_identical_by_design_name(self, tiny_sns):
        sns, entries = tiny_sns
        _, thread = serve(sns)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            for name, entry in entries.items():
                status, doc = client.post("/predict", {"design": name})
                assert status == 200, doc
                direct = sns.predict(entry.module)
                assert doc["timing_ps"] == direct.timing_ps
                assert doc["area_um2"] == direct.area_um2
                assert doc["power_mw"] == direct.power_mw
                assert doc["num_paths"] == direct.num_paths
                assert doc["model"] == fingerprint_model(sns)
                assert doc["precision"] == "fp64"
            client.close()

    def test_bit_identical_by_source(self, tiny_sns):
        from repro.runtime.frontend import compile_source

        sns, _ = tiny_sns
        source = """
        module widget(input [7:0] a, input [7:0] b, output [7:0] y);
          assign y = (a & b) + (a ^ b);
        endmodule
        """
        _, thread = serve(sns)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            status, doc = client.post("/predict", {"source": source})
            client.close()
        assert status == 200, doc
        direct = sns.predict(compile_source(source))
        assert doc["timing_ps"] == direct.timing_ps
        assert doc["area_um2"] == direct.area_um2
        assert doc["power_mw"] == direct.power_mw

    def test_bad_requests_are_400s(self, tiny_sns):
        sns, _ = tiny_sns
        _, thread = serve(sns)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            assert client.post("/predict", {})[0] == 400
            assert client.post("/predict", {"design": "nope"})[0] == 400
            assert client.post("/predict", {"source": "module ("})[0] == 400
            assert client.post("/predict", {"design": "gpio16",
                                            "source": "x"})[0] == 400
            assert client.post("/predict", {"design": "gpio16",
                                            "activity": "high"})[0] == 400
            status, _doc = client.post("/predict", {"design": "gpio16",
                                                    "model": "missing"})
            assert status == 404
            client.close()

    def test_serialized_baseline_same_answers(self, tiny_sns):
        """The benchmark's baseline mode serves identical payloads."""
        sns, entries = tiny_sns
        _, thread = serve(sns, serialized=True)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            status, doc = client.post("/predict", {"design": "gpio16"})
            client.close()
        assert status == 200
        direct = sns.predict(entries["gpio16"].module)
        assert doc["timing_ps"] == direct.timing_ps


class TestSingleFlight:
    def test_identical_concurrent_requests_compute_once(self, tiny_sns):
        """Satellite regression: N identical in-flight requests share one
        computation and exactly one PredictionCache store."""
        sns, _ = tiny_sns
        server, thread = serve(sns, max_wait_ms=1.0)
        served = server.registry.get("default")

        engine = served.predictor("fp64")
        compute_calls = []
        entered = threading.Event()
        real_predict = engine.predict_batch

        def slow_predict(graphs, activity_maps=None):
            compute_calls.append(len(graphs))
            entered.set()
            time.sleep(0.5)        # hold the burst in flight
            return real_predict(graphs, activity_maps=activity_maps)

        engine.predict_batch = slow_predict

        puts = []
        real_put = served.prediction_cache.put
        served.prediction_cache.put = \
            lambda key, value: (puts.append(key), real_put(key, value))[1]

        with thread as handle:
            results = []

            def one(i):
                client = ServeClient("127.0.0.1", handle.port,
                                     client_id=f"c{i}")
                results.append(client.post("/predict", {"design": "gpio16"}))
                client.close()

            first = threading.Thread(target=one, args=(0,))
            first.start()
            assert entered.wait(timeout=30.0)  # leader is inside the compute
            rest = [threading.Thread(target=one, args=(i,))
                    for i in range(1, 6)]
            for t in rest:
                t.start()
            for t in [first] + rest:
                t.join()

            probe = ServeClient("127.0.0.1", handle.port)
            _, metrics = probe.get("/metrics")
            probe.close()

        assert [status for status, _ in results] == [200] * 6
        docs = [doc for _, doc in results]
        assert all(doc == docs[0] for doc in docs)       # shared result
        assert compute_calls == [1]                      # one computation
        assert len(puts) == 1                            # one cache store
        assert metrics["single_flight_hits"] == 5

    def test_repeat_after_completion_is_a_cache_hit(self, tiny_sns):
        sns, _ = tiny_sns
        server, thread = serve(sns)
        served = server.registry.get("default")
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            first = client.post("/predict", {"design": "conv3x3"})
            hits_before = served.prediction_cache.stats.hits
            second = client.post("/predict", {"design": "conv3x3"})
            client.close()
        assert first == second
        assert served.prediction_cache.stats.hits > hits_before


class TestAdmission:
    def test_rate_limit_429_and_metrics(self, tiny_sns):
        sns, _ = tiny_sns
        _, thread = serve(sns, rate_limit=2.0, burst=2.0)
        with thread as handle:
            # Warm compile + prediction caches from an unmetered client so
            # the greedy burst below is near-instant (no token refill).
            warm = ServeClient("127.0.0.1", handle.port, client_id="calm")
            assert warm.post("/predict", {"design": "gpio16"})[0] == 200

            client = ServeClient("127.0.0.1", handle.port,
                                 client_id="greedy")
            statuses = [client.post("/predict", {"design": "gpio16"})[0]
                        for _ in range(6)]
            # The calm client's bucket is untouched (per-client buckets).
            assert warm.post("/predict", {"design": "gpio16"})[0] == 200
            _, metrics = warm.get("/metrics")
            client.close()
            warm.close()
        assert statuses.count(200) == 2
        assert statuses.count(429) == 4
        assert metrics["endpoints"]["predict"]["rejected_rate_limit"] == 4

    def test_queue_full_503_and_metrics(self, tiny_sns):
        """With the queue bounded and workers pinned, overload sheds."""
        sns, _ = tiny_sns
        server, thread = serve(sns, max_batch=1, max_queue=1, workers=2,
                               max_wait_ms=0.5)
        release = threading.Event()
        names = ["gpio16", "conv3x3", "piecewise8"]
        with thread as handle:
            # First request creates the (model, precision) batcher...
            setup = ServeClient("127.0.0.1", handle.port, client_id="setup")
            assert setup.post("/predict", {"design": "gpio16"})[0] == 200
            batcher = server._batchers[("default", "fp64")]

            # ...then gate it at the async layer (off the worker pool, so
            # later requests can still compile and reach admission).
            real_run_batch = batcher.run_batch

            async def gated_run_batch(payloads):
                import asyncio

                await asyncio.get_running_loop().run_in_executor(
                    None, lambda: release.wait(timeout=30.0))
                return await real_run_batch(payloads)

            batcher.run_batch = gated_run_batch

            # Two requests saturate the worker slots, the third fills the
            # one-deep queue, the fourth must shed.
            results = {}

            def one(name, i):
                client = ServeClient("127.0.0.1", handle.port,
                                     client_id=f"q{i}", timeout=30.0)
                results[name] = client.post("/predict", {"design": name})
                client.close()

            threads = []
            for i, name in enumerate(names):
                t = threading.Thread(target=one, args=(name, i))
                t.start()
                threads.append(t)
                time.sleep(0.3)    # let it compile, submit, and occupy

            probe = ServeClient("127.0.0.1", handle.port, client_id="late")
            status, doc = probe.post("/predict", {"design": "gpio32"})
            assert status == 503, doc

            release.set()
            for t in threads:
                t.join()
            _, metrics = probe.get("/metrics")
            probe.close()

        assert [s for s, _ in results.values()] == [200] * 3
        assert metrics["endpoints"]["predict"]["rejected_queue_full"] >= 1

    def test_timeout_504_and_metrics(self, tiny_sns):
        sns, _ = tiny_sns
        server, thread = serve(sns, request_timeout_s=0.2)
        served = server.registry.get("default")
        engine = served.predictor("fp64")
        real_predict = engine.predict_batch
        stall = threading.Event()

        def slow_predict(graphs, activity_maps=None):
            stall.wait(timeout=2.0)
            return real_predict(graphs, activity_maps=activity_maps)

        engine.predict_batch = slow_predict

        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            t0 = time.monotonic()
            status, doc = client.post("/predict", {"design": "gpio16"})
            waited = time.monotonic() - t0
            stall.set()
            _, metrics = client.get("/metrics")
            client.close()
        assert status == 504, doc
        assert waited < 1.5        # the deadline answered, not the stall
        assert metrics["endpoints"]["predict"]["timeouts"] == 1


class TestMetricsAndBatching:
    def test_metrics_shape_and_batch_counters(self, tiny_sns):
        sns, _ = tiny_sns
        _, thread = serve(sns, max_wait_ms=10.0)
        with thread as handle:
            bodies = [{"design": n} for n in DESIGN_NAMES] * 4
            load = run_load("127.0.0.1", handle.port, bodies, clients=4)
            client = ServeClient("127.0.0.1", handle.port)
            _, metrics = client.get("/metrics")
            client.close()

        assert load.ok == len(bodies)
        predict = metrics["endpoints"]["predict"]
        assert predict["requests"] == len(bodies)
        assert predict["ok"] == len(bodies)
        assert predict["latency"]["count"] == len(bodies)
        assert predict["latency"]["p50_ms"] <= predict["latency"]["p99_ms"]

        batching = metrics["batching"]
        assert batching["batched_requests"] >= 1
        assert batching["batches"] >= 1
        assert batching["mean_batch_size"] >= 1.0
        assert set(batching["flush_reasons"]) <= {"size", "deadline"}
        assert metrics["queue_depth"] == 0
        assert metrics["config"]["max_batch"] == 8
        assert "default" in metrics["registry"]["models"]

        # The shared-store aggregation: per-tier hit counters and rates.
        store = metrics["store"]
        assert set(store["tiers"]) == {"object", "memory", "persistent"}
        for tier in store["tiers"].values():
            assert tier["hits"] >= 0
            assert 0.0 <= tier["hit_rate"] <= 1.0
        assert 0.0 <= store["hit_rate"] <= 1.0
        assert "prediction" in store["kinds"]

    def test_concurrent_requests_coalesce_into_one_batch(self, tiny_sns):
        """Distinct requests inside one batching window share a flush."""
        sns, _ = tiny_sns
        _, thread = serve(sns, max_wait_ms=150.0, max_batch=8)
        with thread as handle:
            warm = ServeClient("127.0.0.1", handle.port)
            for name in DESIGN_NAMES:      # warm compile + cache tiers
                assert warm.post("/predict", {"design": name})[0] == 200
            batches_before = warm.get("/metrics")[1]["batching"]["batches"]

            barrier = threading.Barrier(len(DESIGN_NAMES))
            results = []

            def one(name):
                client = ServeClient("127.0.0.1", handle.port)
                barrier.wait()
                results.append(client.post("/predict", {"design": name}))
                client.close()

            threads = [threading.Thread(target=one, args=(n,))
                       for n in DESIGN_NAMES]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            _, metrics = warm.get("/metrics")
            warm.close()

        assert [s for s, _ in results] == [200] * len(DESIGN_NAMES)
        # Cached compiles land all three submissions well inside the
        # 150 ms window: one deadline flush carries multiple requests.
        assert metrics["batching"]["max_batch_size"] >= 2
        assert metrics["batching"]["batches"] > batches_before


class TestStaleness:
    def test_weight_mutation_rekeys_served_model(self, tiny_sns):
        """In-place fine-tuning is detected per request, not served stale."""
        sns, _ = tiny_sns
        server, thread = serve(sns)
        param = sns.circuitformer.parameters()[0]
        original = param.data.copy()
        try:
            with thread as handle:
                client = ServeClient("127.0.0.1", handle.port)
                _, before = client.post("/predict", {"design": "gpio16"})
                param.data = original + 1e-6   # "fine-tune" in place
                _, after = client.post("/predict", {"design": "gpio16"})
                param.data = original.copy()   # restore the shared model
                _, restored = client.post("/predict", {"design": "gpio16"})
                client.close()
            assert after["model"] != before["model"]
            assert restored["model"] == before["model"]
            assert restored["timing_ps"] == before["timing_ps"]
        finally:
            param.data = original


class TestCli:
    def test_serve_cli_round_trip_and_sigint_drain(self, tiny_sns, tmp_path):
        """`repro serve` boots from an .npz, serves, and drains on SIGINT."""
        import json
        import signal
        import subprocess
        import sys

        from repro.core import save_sns

        sns, _ = tiny_sns
        model_path = tmp_path / "model.npz"
        save_sns(sns, model_path)

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(model_path),
             "--port", "0", "--max-batch", "8", "--max-wait-ms", "5",
             "--rate-limit", "500", "--cache-dir", str(tmp_path / "cache"),
             "--precision", "fp64"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            line = proc.stdout.readline()
            assert line.startswith("serving on http://"), line
            port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])

            client = ServeClient("127.0.0.1", port, timeout=120.0)
            status, health = client.get("/healthz")
            assert status == 200 and "default" in health["models"]
            status, doc = client.post("/predict", {"design": "gpio16"})
            client.close()
            assert status == 200 and doc["timing_ps"] > 0

            bench = subprocess.run(
                [sys.executable, "-m", "repro", "bench-serve",
                 "--port", str(port), "--clients", "4", "--requests", "8",
                 "--output", str(tmp_path / "load.json")],
                capture_output=True, text=True, timeout=300)
            assert bench.returncode == 0, bench.stdout + bench.stderr
            load = json.loads((tmp_path / "load.json").read_text())
            assert load["ok"] == load["requests"] == 8
            assert load["requests_per_second"] > 0

            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "draining in-flight requests" in out
        assert "server stopped" in out


class TestTrainAndDse:
    def test_train_then_predict_on_new_model(self, tiny_sns):
        sns, _ = tiny_sns
        _, thread = serve(sns, request_timeout_s=600.0)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port, timeout=600.0)
            status, doc = client.post("/train", {
                "designs": ["gpio16", "conv3x3"],
                "circuitformer_epochs": 1, "aggregator_epochs": 5,
                "max_paths": 20, "name": "student"})
            assert status == 200, doc
            assert doc["name"] == "student"
            assert doc["designs"] == 2

            # Address the new model by name and by fingerprint prefix.
            st_by_name, by_name = client.post(
                "/predict", {"design": "gpio16", "model": "student"})
            st_by_fp, by_fp = client.post(
                "/predict", {"design": "gpio16", "model": doc["model"][:12]})
            _, health = client.get("/healthz")
            client.close()
        assert st_by_name == 200 and st_by_fp == 200
        assert by_name == by_fp
        assert by_name["model"] == doc["model"]
        assert "student" in health["models"]

    def test_train_disabled_is_404(self, tiny_sns):
        sns, _ = tiny_sns
        _, thread = serve(sns, allow_train=False)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port)
            status, _doc = client.post("/train", {"designs": ["gpio16"]})
            client.close()
        assert status == 404

    def test_dse_endpoint(self, tiny_sns):
        sns, _ = tiny_sns
        _, thread = serve(sns, request_timeout_s=600.0)
        with thread as handle:
            client = ServeClient("127.0.0.1", handle.port, timeout=600.0)
            status, doc = client.post("/dse", {"budget": 12, "seed": 1})
            bad, _ = client.post("/dse", {"space": "galaxy"})
            client.close()
        assert status == 200, doc
        assert bad == 400
        assert doc["explored"] >= 1
        assert doc["front_size"] >= 1
        for corner in ("high_perf", "power_eff", "area_eff"):
            point = doc[corner]
            assert point["timing_ps"] > 0
            assert set(point) == {"name", "params", "score", "timing_ps",
                                  "area_um2", "power_mw"}
