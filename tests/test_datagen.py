"""Tests for dataset building, the Markov generator, and SeqGAN."""

import numpy as np
import pytest

from repro.core import PathSampler
from repro.datagen import (
    AugmentationConfig,
    MarkovChainGenerator,
    PathRecord,
    SeqGAN,
    SeqGANConfig,
    augment_path_dataset,
    build_design_dataset,
    sample_path_dataset,
    train_test_split_by_family,
)
from repro.designs import standard_designs
from repro.graphir import Vocabulary
from repro.synth import Synthesizer


@pytest.fixture(scope="module")
def small_dataset():
    entries = [e for e in standard_designs()
               if e.name in ("gpio16", "piecewise8", "mergesort8", "radixsort8",
                             "sodor32", "icenet64", "conv3x3", "fpu32")]
    return build_design_dataset(entries, Synthesizer(effort="low"))


class TestDesignDataset:
    def test_records_have_labels(self, small_dataset):
        for r in small_dataset:
            assert r.timing_ps > 0 and r.area_um2 > 0 and r.power_mw > 0
            assert r.graph.num_nodes > 0

    def test_max_nodes_filter(self):
        entries = [e for e in standard_designs() if e.name in ("gpio16", "aes4")]
        records = build_design_dataset(entries, Synthesizer(effort="low"), max_nodes=500)
        assert [r.name for r in records] == ["gpio16"]

    def test_split_keeps_families_together(self, small_dataset):
        train, test = train_test_split_by_family(small_dataset, 0.5, seed=3)
        train_families = {r.family for r in train}
        test_families = {r.family for r in test}
        assert not train_families & test_families
        assert len(train) + len(test) == len(small_dataset)

    def test_split_fraction_validated(self, small_dataset):
        with pytest.raises(ValueError):
            train_test_split_by_family(small_dataset, 0.0)
        with pytest.raises(ValueError):
            train_test_split_by_family(small_dataset, 1.5)

    def test_split_deterministic(self, small_dataset):
        a = train_test_split_by_family(small_dataset, 0.5, seed=1)
        b = train_test_split_by_family(small_dataset, 0.5, seed=1)
        assert [r.name for r in a[0]] == [r.name for r in b[0]]


class TestPathDataset:
    def test_sampled_paths_are_unique_and_labeled(self, small_dataset):
        records = sample_path_dataset(
            small_dataset[:3], sampler=PathSampler(k=5, max_paths=30),
            synthesizer=Synthesizer(effort="low"))
        keys = [r.tokens for r in records]
        assert len(keys) == len(set(keys))
        for r in records:
            assert r.timing_ps > 0 and r.area_um2 > 0

    def test_labels_match_direct_synthesis(self, small_dataset):
        synth = Synthesizer(effort="low")
        records = sample_path_dataset(small_dataset[:1],
                                      sampler=PathSampler(k=5, max_paths=5),
                                      synthesizer=synth)
        for r in records:
            direct = synth.synthesize_path(list(r.tokens))
            assert r.timing_ps == pytest.approx(direct.timing_ps)
            assert r.area_um2 == pytest.approx(direct.area_um2)


REAL_PATHS = [
    ("io8", "mul16", "add16", "dff16"),
    ("dff16", "add16", "dff16"),
    ("io8", "add16", "mul16", "dff16"),
    ("dff16", "mux16", "add16", "dff16"),
    ("io8", "xor8", "and8", "dff8"),
    ("dff8", "sh8", "or8", "dff8"),
    ("io16", "mul32", "add32", "dff32"),
    ("dff32", "add32", "add32", "dff32"),
]


class TestMarkov:
    def test_transition_probs_sum_to_one(self):
        gen = MarkovChainGenerator().fit(REAL_PATHS)
        for state in gen.states:
            assert sum(gen.transition_probs(state).values()) == pytest.approx(1.0)

    def test_transitions_only_observed(self):
        gen = MarkovChainGenerator().fit(REAL_PATHS)
        observed = set()
        for p in REAL_PATHS:
            for a, b in zip(p, p[1:]):
                observed.add((a, b))
        for _ in range(50):
            path = gen.generate_one()
            for a, b in zip(path, path[1:]):
                assert (a, b) in observed

    def test_generates_unique_and_excludes(self):
        gen = MarkovChainGenerator(seed=1).fit(REAL_PATHS)
        exclude = set(REAL_PATHS)
        out = gen.generate(10, exclude=exclude)
        assert len(set(out)) == len(out)
        assert not set(out) & exclude

    def test_respects_max_len(self):
        gen = MarkovChainGenerator(seed=2).fit(REAL_PATHS)
        for p in gen.generate(20, max_len=3, min_len=1):
            assert len(p) <= 3

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            MarkovChainGenerator().fit([])

    def test_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MarkovChainGenerator().generate_one()

    def test_deterministic_with_seed(self):
        a = MarkovChainGenerator(seed=5).fit(REAL_PATHS).generate(5)
        b = MarkovChainGenerator(seed=5).fit(REAL_PATHS).generate(5)
        assert a == b


FAST_GAN = SeqGANConfig(embedding_size=12, hidden_size=16, max_len=8,
                        pretrain_epochs=8, adversarial_rounds=2,
                        disc_steps_per_round=1, batch_size=8)


class TestSeqGAN:
    def test_fit_and_generate_valid_tokens(self):
        vocab = Vocabulary.standard()
        gan = SeqGAN(vocab=vocab, config=FAST_GAN, seed=0).fit(REAL_PATHS)
        paths = gan.generate(5)
        assert paths  # produced something
        for p in paths:
            assert 2 <= len(p) <= FAST_GAN.max_len
            for token in p:
                assert token in vocab

    def test_generate_excludes(self):
        gan = SeqGAN(config=FAST_GAN, seed=0).fit(REAL_PATHS)
        exclude = set(REAL_PATHS)
        for p in gan.generate(5, exclude=exclude):
            assert p not in exclude

    def test_history_records_both_phases(self):
        gan = SeqGAN(config=FAST_GAN, seed=0).fit(REAL_PATHS)
        phases = {h["phase"] for h in gan.history}
        assert phases == {0.0, 1.0}

    def test_pretraining_reduces_mle_loss(self):
        cfg = SeqGANConfig(embedding_size=12, hidden_size=16, max_len=8,
                           pretrain_epochs=25, adversarial_rounds=0, batch_size=8)
        gan = SeqGAN(config=cfg, seed=0).fit(REAL_PATHS)
        pre = [h["loss"] for h in gan.history if h["phase"] == 0.0]
        assert np.mean(pre[-5:]) < np.mean(pre[:5])

    def test_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SeqGAN(config=FAST_GAN).generate(1)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            SeqGAN(config=FAST_GAN).fit([])


class TestAugmentation:
    def _records(self):
        synth = Synthesizer(effort="low")
        out = []
        for tokens in REAL_PATHS:
            lab = synth.synthesize_path(list(tokens))
            out.append(PathRecord(tokens, lab.timing_ps, lab.area_um2, lab.power_mw))
        return out

    def test_mix_includes_sampled_and_generated(self):
        sampled = self._records()
        config = AugmentationConfig(markov_paths=6, seqgan_paths=4, max_len=8,
                                    seqgan=FAST_GAN)
        full = augment_path_dataset(sampled, config, Synthesizer(effort="low"))
        assert len(full) > len(sampled)
        keys = [r.tokens for r in full]
        assert len(keys) == len(set(keys))
        for r in full:
            assert r.timing_ps > 0 and r.area_um2 > 0

    def test_zero_augmentation_is_identity(self):
        sampled = self._records()
        config = AugmentationConfig(markov_paths=0, seqgan_paths=0)
        full = augment_path_dataset(sampled, config, Synthesizer(effort="low"))
        assert [r.tokens for r in full] == [r.tokens for r in sampled]
