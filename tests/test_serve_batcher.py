"""Isolation tests for the cross-request micro-batch queue.

Everything here runs against fake ``run_batch`` callables — no model,
no HTTP — so each contract of
:class:`repro.serve.batcher.MicroBatchQueue` is pinned down on its own:
flush triggers (size vs deadline), deterministic result routing,
cancellation of abandoned waiters, per-request error isolation, and
bounded-queue admission.
"""

import asyncio

import pytest

from repro.serve.batcher import MicroBatchQueue, QueueFullError


def run(coro):
    return asyncio.run(coro)


class TestFlushTriggers:
    def test_size_flush(self):
        """max_batch concurrent submissions flush immediately as one batch."""
        flushes = []

        async def main():
            async def run_batch(items):
                return [x * 2 for x in items]

            q = MicroBatchQueue(run_batch, max_batch=4, max_wait_s=60.0,
                                on_flush=lambda n, why: flushes.append((n, why)))
            results = await asyncio.gather(*(q.submit(i) for i in range(4)))
            await q.close()
            return results

        assert run(main()) == [0, 2, 4, 6]
        assert flushes == [(4, "size")]

    def test_deadline_flush(self):
        """A partial batch flushes once the oldest waiter hits max_wait."""
        flushes = []

        async def main():
            async def run_batch(items):
                return items

            q = MicroBatchQueue(run_batch, max_batch=64, max_wait_s=0.02,
                                on_flush=lambda n, why: flushes.append((n, why)))
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            results = await asyncio.gather(q.submit("a"), q.submit("b"))
            waited = loop.time() - t0
            await q.close()
            return results, waited

        results, waited = run(main())
        assert results == ["a", "b"]
        assert flushes == [(2, "deadline")]
        assert waited >= 0.015  # the deadline, not the size trigger, fired

    def test_lone_request_not_stuck(self):
        """A single submission completes within roughly max_wait."""
        async def main():
            async def run_batch(items):
                return items

            q = MicroBatchQueue(run_batch, max_batch=32, max_wait_s=0.01)
            result = await asyncio.wait_for(q.submit(42), timeout=2.0)
            await q.close()
            return result

        assert run(main()) == 42


class TestRouting:
    def test_results_route_to_submitters(self):
        """Result i lands with waiter i across interleaved batches."""
        async def main():
            async def run_batch(items):
                await asyncio.sleep(0.001)
                return [f"r-{x}" for x in items]

            q = MicroBatchQueue(run_batch, max_batch=3, max_wait_s=0.005)
            results = await asyncio.gather(*(q.submit(i) for i in range(20)))
            await q.close()
            return results

        assert run(main()) == [f"r-{i}" for i in range(20)]

    def test_length_mismatch_is_an_error(self):
        async def main():
            async def run_batch(items):
                return items[:-1]

            q = MicroBatchQueue(run_batch, max_batch=2, max_wait_s=0.005)
            return await asyncio.gather(q.submit(1), q.submit(2),
                                        return_exceptions=True)

        results = run(main())
        assert all(isinstance(r, RuntimeError) for r in results)


class TestCancellation:
    def test_cancelled_waiter_skipped(self):
        """A cancelled submission consumes no batch slot and no compute."""
        seen = []

        async def main():
            async def run_batch(items):
                seen.append(list(items))
                return items

            q = MicroBatchQueue(run_batch, max_batch=8, max_wait_s=0.03)
            doomed = asyncio.ensure_future(q.submit("doomed"))
            await asyncio.sleep(0)     # let it enqueue
            doomed.cancel()
            survivor = await q.submit("survivor")
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await q.close()
            return survivor

        assert run(main()) == "survivor"
        assert seen == [["survivor"]]

    def test_all_cancelled_batch_never_runs(self):
        calls = []

        async def main():
            async def run_batch(items):
                calls.append(list(items))
                return items

            q = MicroBatchQueue(run_batch, max_batch=8, max_wait_s=0.01)
            tasks = [asyncio.ensure_future(q.submit(i)) for i in range(3)]
            await asyncio.sleep(0)
            for t in tasks:
                t.cancel()
            await asyncio.sleep(0.05)  # past the deadline
            await q.close()

        run(main())
        assert calls == []


class TestErrorIsolation:
    def test_per_slot_exception_results(self):
        """An Exception in one result slot rejects only that waiter."""
        async def main():
            async def run_batch(items):
                return [ValueError(f"bad {x}") if x == "poison" else x.upper()
                        for x in items]

            q = MicroBatchQueue(run_batch, max_batch=3, max_wait_s=0.01)
            results = await asyncio.gather(
                q.submit("ok1"), q.submit("poison"), q.submit("ok2"),
                return_exceptions=True)
            await q.close()
            return results

        ok1, poison, ok2 = run(main())
        assert (ok1, ok2) == ("OK1", "OK2")
        assert isinstance(poison, ValueError)

    def test_wholesale_failure_reruns_per_item(self):
        """A batch-level raise isolates to per-item retries."""
        batch_sizes = []

        async def main():
            async def run_batch(items):
                batch_sizes.append(len(items))
                if "poison" in items:
                    raise RuntimeError("batch blew up")
                return [x.upper() for x in items]

            q = MicroBatchQueue(run_batch, max_batch=3, max_wait_s=0.01)
            results = await asyncio.gather(
                q.submit("ok1"), q.submit("poison"), q.submit("ok2"),
                return_exceptions=True)
            await q.close()
            return results

        ok1, poison, ok2 = run(main())
        assert (ok1, ok2) == ("OK1", "OK2")
        assert isinstance(poison, RuntimeError)
        # One failed batch of 3, then three singleton retries.
        assert sorted(batch_sizes) == [1, 1, 1, 3]

    def test_single_item_batch_raises_directly(self):
        async def main():
            async def run_batch(items):
                raise RuntimeError("nope")

            q = MicroBatchQueue(run_batch, max_batch=1, max_wait_s=0.01)
            with pytest.raises(RuntimeError, match="nope"):
                await q.submit("x")
            await q.close()

        run(main())


class TestAdmission:
    def test_queue_full_raises(self):
        """Submissions beyond max_queue are rejected, not buffered."""
        async def main():
            release = asyncio.Event()

            async def run_batch(items):
                await release.wait()
                return items

            q = MicroBatchQueue(run_batch, max_batch=1, max_wait_s=0.001,
                                max_queue=2, max_concurrent=1)
            first = asyncio.ensure_future(q.submit(0))
            await asyncio.sleep(0.02)  # flushed into the blocked batch
            tasks = [first] + [asyncio.ensure_future(q.submit(i))
                               for i in (1, 2)]
            await asyncio.sleep(0.02)  # 1 in flight, 2 queued: at capacity
            with pytest.raises(QueueFullError):
                await q.submit(99)
            release.set()
            results = await asyncio.gather(*tasks)
            await q.close()
            return results

        assert run(main()) == [0, 1, 2]

    def test_drain_completes_inflight(self):
        async def main():
            async def run_batch(items):
                await asyncio.sleep(0.01)
                return items

            q = MicroBatchQueue(run_batch, max_batch=4, max_wait_s=0.001)
            tasks = [asyncio.ensure_future(q.submit(i)) for i in range(8)]
            await asyncio.sleep(0)  # let the submissions enqueue
            assert await q.drain(timeout=5.0)
            assert q.depth == 0
            results = await asyncio.gather(*tasks)
            await q.close()
            return results

        assert run(main()) == list(range(8))
