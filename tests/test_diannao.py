"""Tests for the DianNao case study: config, generator, perf, quantization, DSE."""

import numpy as np
import pytest

from repro.diannao import (
    ALEXNET_CIFAR10,
    DATATYPES,
    DianNao,
    DianNaoConfig,
    DianNaoDSE,
    DianNaoPerfModel,
    QuantizedClassifier,
    datatype_accuracy,
    full_design_space,
    quantize_array,
)
from repro.graphir import token_counts
from repro.synth import Synthesizer


class TestConfig:
    def test_576_combinations(self):
        """Table 13: 4*6*2*3*4 = 576 designs."""
        space = full_design_space()
        assert len(space) == 576
        assert len({c.name for c in space}) == 576

    def test_stage_split(self):
        assert DianNaoConfig(pipeline_stages=3).stage_split == (1, 1, 1)
        assert DianNaoConfig(pipeline_stages=8).stage_split == (3, 2, 3)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            DianNaoConfig(tn=5)
        with pytest.raises(ValueError):
            DianNaoConfig(datatype="fp64")

    def test_datatype_table(self):
        assert DATATYPES["bf16"].exponent_bits == 8
        assert DATATYPES["fp16"].exponent_bits == 5
        assert not DATATYPES["int16"].is_float
        assert DATATYPES["tf32"].total_bits == 19

    def test_macs_per_cycle(self):
        assert DianNaoConfig(tn=16).macs_per_cycle == 256


class TestGenerator:
    def test_elaborates_and_synthesizes(self):
        g = DianNao(DianNaoConfig(tn=4)).elaborate()
        g.validate()
        result = Synthesizer(effort="low").synthesize(g)
        assert result.area_um2 > 0

    def test_nfu1_multiplier_count(self):
        cfg = DianNaoConfig(tn=4, datatype="int16")
        counts = token_counts(DianNao(cfg).elaborate())
        mults = counts["mul32"]
        # Tn*Tn NFU-1 multipliers plus one per NFU-3 activation unit.
        assert mults == 4 * 4 + 4

    def test_area_scales_quadratically_with_tn(self):
        synth = Synthesizer(effort="low")
        a8 = synth.synthesize(DianNao(DianNaoConfig(tn=8)).elaborate()).area_um2
        a16 = synth.synthesize(DianNao(DianNaoConfig(tn=16)).elaborate()).area_um2
        assert 2.5 < a16 / a8 < 4.5

    def test_fp_datapath_costs_more_than_int(self):
        synth = Synthesizer(effort="low")
        int16 = synth.synthesize(DianNao(DianNaoConfig(tn=4, datatype="int16")).elaborate())
        fp32 = synth.synthesize(DianNao(DianNaoConfig(tn=4, datatype="fp32")).elaborate())
        assert fp32.area_um2 > int16.area_um2

    def test_deeper_pipeline_has_more_registers_and_shorter_period(self):
        synth = Synthesizer(effort="low")
        g3 = DianNao(DianNaoConfig(tn=4, pipeline_stages=3)).elaborate()
        g8 = DianNao(DianNaoConfig(tn=4, pipeline_stages=8)).elaborate()
        c3, c8 = token_counts(g3), token_counts(g8)
        assert sum(v for k, v in c8.items() if k.startswith("dff")) > \
            sum(v for k, v in c3.items() if k.startswith("dff"))
        assert synth.synthesize(g8).timing_ps < synth.synthesize(g3).timing_ps

    def test_nfu_stage_labels_present(self):
        g = DianNao(DianNaoConfig(tn=4)).elaborate()
        labels = {n.label.split("_")[0] for n in g.nodes() if n.node_type == "dff"}
        assert {"nfu1", "nfu2", "nfu3", "nbin", "sb"} <= labels


class TestPerfModel:
    def test_bigger_tn_fewer_cycles(self):
        m = DianNaoPerfModel()
        c4 = m.simulate(DianNaoConfig(tn=4)).cycles
        c16 = m.simulate(DianNaoConfig(tn=16)).cycles
        assert c16 < c4

    def test_useful_macs_independent_of_tn(self):
        m = DianNaoPerfModel()
        r4 = m.simulate(DianNaoConfig(tn=4))
        r32 = m.simulate(DianNaoConfig(tn=32))
        assert r4.useful_macs == r32.useful_macs

    def test_utilization_declines_at_tn32(self):
        """FC bandwidth + padding waste erode large-Tn utilization."""
        m = DianNaoPerfModel()
        u16 = m.simulate(DianNaoConfig(tn=16)).utilization
        u32 = m.simulate(DianNaoConfig(tn=32)).utilization
        assert u32 < u16 <= 1.0

    def test_fc_layers_bandwidth_bound(self):
        wide = DianNaoPerfModel(mem_bytes_per_cycle=1e12)
        narrow = DianNaoPerfModel(mem_bytes_per_cycle=8.0)
        cfg = DianNaoConfig(tn=32)
        assert narrow.simulate(cfg).cycles > wide.simulate(cfg).cycles

    def test_activity_coefficients_cover_registers(self):
        cfg = DianNaoConfig(tn=4)
        m = DianNaoPerfModel()
        g = DianNao(cfg).elaborate()
        coeffs = m.activity_coefficients(g, m.simulate(cfg))
        dffs = [n for n in g.nodes() if n.node_type == "dff"]
        assert len(coeffs) >= 0.9 * len(dffs)
        assert all(0.0 <= v <= 1.0 for v in coeffs.values())

    def test_inferences_per_second(self):
        report = DianNaoPerfModel().simulate(DianNaoConfig(tn=16))
        assert report.inferences_per_second(2.0) == pytest.approx(
            2 * report.inferences_per_second(1.0))


class TestQuantization:
    def test_quantize_int_grid(self):
        dt = DATATYPES["int16"]
        x = np.array([0.1234567])
        q = quantize_array(x, dt)
        step = 2.0 ** -(dt.total_bits // 2 + 1)
        assert q[0] % step == pytest.approx(0.0, abs=1e-12)

    def test_quantize_int_saturates(self):
        q = quantize_array(np.array([1e9, -1e9]), DATATYPES["int8"])
        assert q[0] < 8 and q[1] > -8

    def test_quantize_float_keeps_mantissa_bits(self):
        x = np.array([1.0 + 2.0 ** -20])
        bf16 = quantize_array(x, DATATYPES["bf16"])
        fp32 = quantize_array(x, DATATYPES["fp32"])
        assert bf16[0] == 1.0          # 8-bit significand drops the epsilon
        assert fp32[0] != 1.0          # 24-bit significand keeps it

    def test_quantize_preserves_zero_and_sign(self):
        for name in DATATYPES:
            q = quantize_array(np.array([0.0, -0.5, 0.5]), DATATYPES[name])
            assert q[0] == 0.0
            assert q[1] <= 0.0 <= q[2]

    def test_fp32_nearly_exact(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        np.testing.assert_allclose(quantize_array(x, DATATYPES["fp32"]), x, rtol=1e-6)

    def test_accuracy_saturates_at_int16(self):
        """Figure 11's headline: int8 loses accuracy; int16 == fp32-class."""
        acc = {dt: datatype_accuracy(dt) for dt in DATATYPES}
        assert acc["int8"] < acc["int16"] - 0.02
        for dt in ("fp16", "bf16", "tf32", "fp32"):
            assert abs(acc[dt] - acc["int16"]) < 0.02

    def test_unknown_datatype(self):
        with pytest.raises(KeyError):
            QuantizedClassifier.__new__(QuantizedClassifier)  # no train needed
            datatype_accuracy("int4")


class TestDSE:
    def test_requires_one_engine(self):
        with pytest.raises(ValueError):
            DianNaoDSE()

    def test_small_sweep_shape(self):
        dse = DianNaoDSE(synthesizer=Synthesizer(effort="low"))
        configs = [DianNaoConfig(tn=tn, datatype="int16") for tn in (4, 8, 16)]
        result = dse.run(configs)
        assert len(result.points) == 3
        groups = result.group_by("tn")
        assert set(groups) == {4, 8, 16}
        for p in result.points:
            assert p.area_efficiency > 0
            assert np.isfinite(p.energy_per_inference_uj)

    def test_power_gating_reduces_power(self):
        cfg = DianNaoConfig(tn=8, datatype="int16")
        gated = DianNaoDSE(synthesizer=Synthesizer(effort="low"),
                           use_power_gating=True).evaluate(cfg)
        plain = DianNaoDSE(synthesizer=Synthesizer(effort="low"),
                           use_power_gating=False).evaluate(cfg)
        assert gated.power_mw < plain.power_mw

    def test_empty_run(self):
        with pytest.raises(ValueError):
            DianNaoDSE(synthesizer=Synthesizer(effort="low")).run([])
