"""Gradient and behavior coverage for the remaining tensor operations."""

import numpy as np
import pytest

from repro.nn import Tensor, huber_loss, l1_loss

from tests.test_nn_tensor import numeric_grad


class TestGelu:
    def test_matches_reference_values(self):
        x = Tensor(np.array([0.0, 1.0, -1.0]))
        out = x.gelu().data
        assert out[0] == pytest.approx(0.0, abs=1e-9)
        assert out[1] == pytest.approx(0.8412, abs=1e-3)   # GELU(1)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)  # GELU(-1)

    def test_gradient(self):
        rng = np.random.default_rng(0)
        x_data = rng.normal(size=(6,))
        x = Tensor(x_data.copy(), requires_grad=True)
        x.gelu().sum().backward()
        num = numeric_grad(lambda a: Tensor(a).gelu().sum().item(), x_data.copy())
        np.testing.assert_allclose(x.grad, num, atol=1e-5)

    def test_monotone_for_positive(self):
        xs = np.linspace(0.1, 3.0, 20)
        out = Tensor(xs).gelu().data
        assert (np.diff(out) > 0).all()


class TestSwapaxes:
    def test_shape_and_gradient(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        y = x.swapaxes(1, 2)
        assert y.shape == (2, 4, 3)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_roundtrip(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(x.swapaxes(0, 1).swapaxes(0, 1).data, x.data)


class TestLossGradients:
    def test_l1_gradient_is_sign(self):
        x = Tensor(np.array([3.0, -2.0]), requires_grad=True)
        l1_loss(x, np.zeros(2)).backward()
        np.testing.assert_allclose(x.grad, [0.5, -0.5], atol=1e-5)

    def test_huber_gradient_saturates(self):
        """Beyond delta, the gradient magnitude is delta/n."""
        x = Tensor(np.array([10.0, -10.0]), requires_grad=True)
        huber_loss(x, np.zeros(2), delta=1.0).backward()
        np.testing.assert_allclose(np.abs(x.grad), [0.5, 0.5], atol=1e-4)

    def test_huber_quadratic_inside_delta(self):
        x_data = np.array([0.3])
        x = Tensor(x_data.copy(), requires_grad=True)
        huber_loss(x, np.zeros(1), delta=1.0).backward()
        assert x.grad[0] == pytest.approx(0.3, abs=1e-4)


class TestMixedGraphs:
    def test_shared_subexpression_gradients_accumulate(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.exp()
        z = y * y + y  # dz/dx = (2y + 1) * y
        z.backward()
        e = np.exp(2.0)
        assert x.grad[0] == pytest.approx((2 * e + 1) * e, rel=1e-9)

    def test_backward_twice_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 3).sum().backward()
        first = x.grad.copy()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * first)

    def test_zero_grad_resets(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 3).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_repr_marks_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(1), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.ones(1)))
