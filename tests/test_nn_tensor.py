"""Unit and gradient-check tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad, tensor


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, tol=1e-5, positive=False):
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=shape)
    if positive:
        x_data = np.abs(x_data) + 0.5
    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x)
    out.backward()
    num = numeric_grad(lambda arr: op(Tensor(arr)).item(), x_data.copy())
    np.testing.assert_allclose(x.grad, num, rtol=tol, atol=tol)


class TestBasicOps:
    def test_add(self):
        check_gradient(lambda x: (x + 3.0).sum(), (4, 3))

    def test_mul(self):
        check_gradient(lambda x: (x * x).sum(), (4, 3))

    def test_sub_neg(self):
        check_gradient(lambda x: (5.0 - x).sum(), (3,))

    def test_div(self):
        check_gradient(lambda x: (1.0 / x).sum(), (4,), positive=True)

    def test_pow(self):
        check_gradient(lambda x: (x ** 3).sum(), (3, 3))

    def test_exp(self):
        check_gradient(lambda x: x.exp().sum(), (4,))

    def test_log(self):
        check_gradient(lambda x: x.log().sum(), (4,), positive=True)

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), (5,))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), (5,))

    def test_relu(self):
        # keep away from the kink at 0
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(10,))
        x_data[np.abs(x_data) < 0.1] = 0.5
        x = Tensor(x_data.copy(), requires_grad=True)
        x.relu().sum().backward()
        num = numeric_grad(lambda a: Tensor(a).relu().sum().item(), x_data.copy())
        np.testing.assert_allclose(x.grad, num, atol=1e-5)

    def test_sqrt(self):
        check_gradient(lambda x: x.sqrt().sum(), (4,), positive=True)

    def test_clip(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(20,)) * 2
        x_data[np.abs(np.abs(x_data) - 1.0) < 0.05] = 0.0  # avoid clip boundary
        x = Tensor(x_data.copy(), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        expected = ((x_data >= -1) & (x_data <= 1)).astype(float)
        np.testing.assert_allclose(x.grad, expected)


class TestBroadcasting:
    def test_broadcast_add_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.arange(3.0), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])
        np.testing.assert_allclose(x.grad, np.ones((4, 3)))

    def test_broadcast_mul_scalar_tensor(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (x * s).sum().backward()
        assert s.grad == pytest.approx(10.0)

    def test_broadcast_keepdims_mean(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        m = x.mean(axis=1, keepdims=True)
        (x - m).sum().backward()
        # d/dx sum(x - mean(x)) = 0
        np.testing.assert_allclose(x.grad, np.zeros((3, 4)), atol=1e-12)


class TestMatmul:
    def test_matmul_2d(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_grad(lambda arr: (Tensor(arr) @ Tensor(b_data)).sum().item(), a_data.copy())
        num_b = numeric_grad(lambda arr: (Tensor(a_data) @ Tensor(arr)).sum().item(), b_data.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-6)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-6)

    def test_matmul_batched(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_matmul_broadcast_batch(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(5, 4, 2)), requires_grad=True)
        out = a @ b
        assert out.shape == (5, 3, 2)
        out.sum().backward()
        assert a.grad.shape == (3, 4)

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))


class TestReductionsAndShape:
    def test_sum_axis(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_max_gradient_splits_ties(self):
        x = Tensor(np.array([1.0, 3.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1], [1, 0]])

    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.transpose()
        assert y.shape == (3, 2)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_transpose_axes(self):
        x = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        y = x.transpose(0, 2, 1)
        assert y.shape == (2, 4, 3)
        y.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_getitem_fancy_index(self):
        x = Tensor(np.arange(10.0), requires_grad=True)
        y = x[np.array([1, 1, 3])]
        y.sum().backward()
        expected = np.zeros(10)
        expected[1] = 2.0  # picked twice
        expected[3] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        p = x.softmax(axis=-1)
        np.testing.assert_allclose(p.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_gradient(self):
        rng = np.random.default_rng(3)
        x_data = rng.normal(size=(2, 5))
        w = rng.normal(size=(2, 5))  # weight to make loss non-symmetric
        x = Tensor(x_data.copy(), requires_grad=True)
        (x.softmax(axis=-1) * Tensor(w)).sum().backward()
        num = numeric_grad(
            lambda a: (Tensor(a).softmax(axis=-1) * Tensor(w)).sum().item(), x_data.copy())
        np.testing.assert_allclose(x.grad, num, atol=1e-6)

    def test_log_softmax_gradient(self):
        rng = np.random.default_rng(4)
        x_data = rng.normal(size=(3, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        x.log_softmax(axis=-1)[np.arange(3), np.array([0, 1, 2])].sum().backward()
        num = numeric_grad(
            lambda a: Tensor(a).log_softmax(axis=-1)[np.arange(3), np.array([0, 1, 2])].sum().item(),
            x_data.copy())
        np.testing.assert_allclose(x.grad, num, atol=1e-6)

    def test_softmax_stability_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        p = x.softmax(axis=-1)
        assert np.isfinite(p.data).all()
        np.testing.assert_allclose(p.data[0, :2], [0.5, 0.5])


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_is_thread_local(self):
        # Concurrent serve workers toggle grad mode independently: one
        # thread leaving no_grad must not re-enable it under another.
        import threading

        from repro.nn import is_grad_enabled

        inner_ok = []
        entered = threading.Event()
        release = threading.Event()

        def other_thread():
            assert is_grad_enabled()      # fresh thread: enabled default
            with no_grad():
                entered.set()
                release.wait(timeout=10)
                inner_ok.append(not is_grad_enabled())

        t = threading.Thread(target=other_thread)
        t.start()
        entered.wait(timeout=10)
        with no_grad():
            pass                          # enter+exit on the main thread
        release.set()                     # other thread must still be off
        t.join()
        assert inner_ok == [True]
        assert is_grad_enabled()

    def test_no_grad_not_inherited_by_spawned_threads(self):
        import threading

        from repro.nn import is_grad_enabled

        seen = []
        with no_grad():
            t = threading.Thread(target=lambda: seen.append(is_grad_enabled()))
            t.start()
            t.join()
        assert seen == [True]

    def test_grad_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.backward()
        assert x.grad[0] == pytest.approx(5.0)

    def test_backward_nonscalar_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_detach(self):
        x = Tensor(np.ones(2), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        (d * 3).sum()  # no error, no graph

    def test_deep_chain_does_not_recurse(self):
        # iterative topo sort must handle chains beyond Python's recursion depth
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_masked_fill(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        y = x.masked_fill(mask, -99.0)
        np.testing.assert_allclose(y.data, [-99, 1, -99, 3])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0, 1])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=1, max_size=16))
def test_property_sum_gradient_is_ones(values):
    x = Tensor(np.array(values), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(len(values)))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-3, 3), min_size=2, max_size=12))
def test_property_softmax_invariant_to_shift(values):
    arr = np.array(values)
    p1 = Tensor(arr).softmax().data
    p2 = Tensor(arr + 10.0).softmax().data
    np.testing.assert_allclose(p1, p2, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5))
def test_property_matmul_shape(m, n):
    a = Tensor(np.ones((m, 3)))
    b = Tensor(np.ones((3, n)))
    assert (a @ b).shape == (m, n)
    np.testing.assert_allclose((a @ b).data, np.full((m, n), 3.0))
