"""Tests for the GraphIR vocabulary, graph, and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphir import (
    ARITH_TYPES,
    LOGIC_TYPES,
    NODE_TYPES,
    CircuitGraph,
    Vocabulary,
    parse_token,
    round_width,
    stats_vector,
    structural_features,
    token_counts,
    token_name,
)


class TestRounding:
    def test_paper_divider_example(self):
        """Widths 12..23 all round to 16 for a divider (Section 3.1)."""
        for w in range(12, 24):
            assert round_width(w, "div") == 16

    def test_tie_rounds_up(self):
        assert round_width(12, "io") == 16  # |12-8| == |12-16|
        assert round_width(6, "io") == 8
        assert round_width(24, "io") == 32

    def test_exact_powers_unchanged(self):
        for w in (4, 8, 16, 32, 64):
            assert round_width(w, "io") == w

    def test_clamp_to_max(self):
        assert round_width(128, "mul") == 64
        assert round_width(1000, "io") == 64

    def test_arith_min_is_8(self):
        assert round_width(1, "add") == 8
        assert round_width(4, "mul") == 8

    def test_logic_min_is_4(self):
        assert round_width(1, "mux") == 4
        assert round_width(3, "dff") == 4

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            round_width(0, "io")

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            round_width(8, "frobnicator")

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 4096), st.sampled_from(NODE_TYPES))
    def test_property_result_always_in_vocab(self, width, node_type):
        rounded = round_width(width, node_type)
        allowed = (8, 16, 32, 64) if node_type in ARITH_TYPES else (4, 8, 16, 32, 64)
        assert rounded in allowed

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 200), st.sampled_from(NODE_TYPES))
    def test_property_monotone(self, width, node_type):
        assert round_width(width + 1, node_type) >= round_width(width, node_type)


class TestVocabulary:
    def test_size_is_79_circuit_tokens(self):
        """Table 2: vocabulary set size 79."""
        vocab = Vocabulary.standard()
        assert vocab.circuit_size == 79
        assert len(vocab) == 81  # + pad + cls

    def test_composition(self):
        vocab = Vocabulary.standard()
        logic = [t for t in vocab.tokens if parse_token(t)[0] in LOGIC_TYPES]
        arith = [t for t in vocab.tokens if parse_token(t)[0] in ARITH_TYPES]
        assert len(logic) == 11 * 5
        assert len(arith) == 6 * 4

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary.standard()
        tokens = ["io8", "mul16", "add16", "dff16"]
        assert vocab.decode(vocab.encode(tokens)) == tokens

    def test_special_token_ids(self):
        vocab = Vocabulary.standard()
        assert vocab.PAD == 0
        assert vocab.CLS == 1
        assert vocab.token_of(0) == "<pad>"
        assert vocab.token_of(1) == "<cls>"

    def test_unknown_token_raises(self):
        vocab = Vocabulary.standard()
        with pytest.raises(KeyError):
            vocab.id_of("mul7")

    def test_all_ids_distinct(self):
        vocab = Vocabulary.standard()
        ids = [vocab.id_of(t) for t in vocab.tokens]
        assert len(set(ids)) == 79
        assert min(ids) == 2

    def test_parse_token_handles_underscore_types(self):
        assert parse_token("reduce_and8") == ("reduce_and", 8)
        assert parse_token("reduce_xor64") == ("reduce_xor", 64)

    def test_parse_token_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_token("banana42")

    def test_encode_array_matches_encode(self):
        vocab = Vocabulary.standard()
        tokens = list(vocab.tokens) + ["io8", "mul16", "dff4", "reduce_xor64"]
        np.testing.assert_array_equal(vocab.encode_array(tokens),
                                      np.asarray(vocab.encode(tokens)))

    def test_encode_array_empty(self):
        vocab = Vocabulary.standard()
        out = vocab.encode_array([])
        assert out.shape == (0,) and out.dtype == np.int64

    def test_encode_array_unknown_token_raises(self):
        vocab = Vocabulary.standard()
        with pytest.raises(KeyError, match="zzz9"):
            vocab.encode_array(["io8", "zzz9", "mul16"])
        with pytest.raises(KeyError, match="mul7"):
            vocab.encode(["mul7"])


def make_mac_graph() -> CircuitGraph:
    """The Figure 2 example: 8-bit multiply-add with output register."""
    g = CircuitGraph("mac8")
    a = g.add_node("io", 8, "a")
    b = g.add_node("io", 8, "b")
    mul = g.add_node("mul", 16, "mul")
    add = g.add_node("add", 16, "add")
    dff = g.add_node("dff", 16, "reg")
    out = g.add_node("io", 16, "out")
    g.add_edge(a, mul)
    g.add_edge(b, mul)
    g.add_edge(mul, add)
    g.add_edge(add, dff)
    g.add_edge(dff, out)
    return g


class TestCircuitGraph:
    def test_figure2_tokens(self):
        g = make_mac_graph()
        tokens = sorted(n.token for n in g.nodes())
        assert tokens == sorted(["io8", "io8", "mul16", "add16", "dff16", "io16"])

    def test_counts(self):
        g = make_mac_graph()
        assert g.num_nodes == 6
        assert g.num_edges == 5

    def test_adjacency(self):
        g = make_mac_graph()
        mul_id = next(n.node_id for n in g.nodes() if n.node_type == "mul")
        add_id = next(n.node_id for n in g.nodes() if n.node_type == "add")
        assert g.successors(mul_id) == [add_id]
        assert mul_id in g.predecessors(add_id)

    def test_parallel_edges_collapse(self):
        g = CircuitGraph()
        a = g.add_node("io", 8)
        b = g.add_node("dff", 8)
        g.add_edge(a, b)
        g.add_edge(a, b)
        assert g.num_edges == 1

    def test_edge_to_missing_node_raises(self):
        g = CircuitGraph()
        a = g.add_node("io", 8)
        with pytest.raises(KeyError):
            g.add_edge(a, 99)

    def test_sequential_ids(self):
        g = make_mac_graph()
        seq_types = {g.node(i).node_type for i in g.sequential_ids()}
        assert seq_types == {"io", "dff"}
        assert len(g.sequential_ids()) == 4

    def test_source_ids_excludes_sinks(self):
        g = make_mac_graph()
        sources = g.source_ids()
        # the final io16 output has no successors -> not a source
        out_id = next(n.node_id for n in g.nodes() if n.token == "io16")
        assert out_id not in sources

    def test_invalid_node_type(self):
        g = CircuitGraph()
        with pytest.raises(ValueError):
            g.add_node("nand", 8)

    def test_merge_remaps(self):
        g1 = make_mac_graph()
        g2 = make_mac_graph()
        n_before = g1.num_nodes
        remap = g1.merge(g2)
        assert g1.num_nodes == 2 * n_before
        assert g1.num_edges == 10
        assert len(remap) == n_before
        g1.validate()

    def test_validate_passes_on_clean_graph(self):
        make_mac_graph().validate()

    def test_to_networkx(self):
        g = make_mac_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 5
        import networkx as nx
        assert nx.is_directed_acyclic_graph(nxg)


class TestStats:
    def test_token_counts_match_figure2(self):
        counts = token_counts(make_mac_graph())
        assert counts["io8"] == 2
        assert counts["mul16"] == 1
        assert counts["add16"] == 1
        assert counts["dff16"] == 1
        assert counts["io16"] == 1

    def test_stats_vector_length_and_sum(self):
        g = make_mac_graph()
        vec = stats_vector(g)
        assert vec.shape == (79,)
        assert vec.sum() == g.num_nodes

    def test_structural_features(self):
        g = make_mac_graph()
        feats = structural_features(g)
        assert feats[0] == 6  # nodes
        assert feats[1] == 5  # edges
        assert feats[2] == 4  # sequential
        assert feats[3] == 1  # max fanout
        assert feats[5] == 16  # max width

    def test_empty_graph_features_are_zero(self):
        feats = structural_features(CircuitGraph())
        np.testing.assert_array_equal(feats, np.zeros(6))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 30))
    def test_property_stats_sum_equals_nodes(self, n):
        g = CircuitGraph()
        rng = np.random.default_rng(n)
        for _ in range(n):
            t = NODE_TYPES[rng.integers(len(NODE_TYPES))]
            g.add_node(t, int(rng.integers(1, 65)))
        assert stats_vector(g).sum() == n
