"""Tests for complete-circuit-path sampling (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PathSampler
from repro.graphir import CircuitGraph
from repro.hdl import Circuit, adder_tree


def figure2_graph() -> CircuitGraph:
    """Figure 2(b): two io8 -> mul16 -> add16 -> dff16 -> io16, with dff feedback."""
    g = CircuitGraph("fig2")
    a = g.add_node("io", 8)
    b = g.add_node("io", 8)
    mul = g.add_node("mul", 16)
    add = g.add_node("add", 16)
    dff = g.add_node("dff", 16)
    out = g.add_node("io", 16)
    g.add_edge(a, mul)
    g.add_edge(b, mul)
    g.add_edge(mul, add)
    g.add_edge(add, dff)
    g.add_edge(dff, add)   # accumulate feedback
    g.add_edge(dff, out)
    return g


class TestSamplerBasics:
    def test_exhaustive_matches_figure2(self):
        """k=1 on the Figure 2 graph yields exactly its four complete paths."""
        paths = PathSampler(k=1, max_paths=100).sample(figure2_graph())
        token_seqs = sorted(p.tokens for p in paths)
        assert token_seqs == sorted([
            ("io8", "mul16", "add16", "dff16"),
            ("io8", "mul16", "add16", "dff16"),
            ("dff16", "add16", "dff16"),
            ("dff16", "io16"),
        ]) or len(token_seqs) == 3  # duplicate io8 paths collapse to one
        # Both io8 inputs produce the same token sequence; dedup keeps one.
        assert ("io8", "mul16", "add16", "dff16") in token_seqs
        assert ("dff16", "add16", "dff16") in token_seqs
        assert ("dff16", "io16") in token_seqs

    def test_paths_start_and_end_sequential(self):
        g = figure2_graph()
        for p in PathSampler(k=1).sample(g):
            assert g.node(p.node_ids[0]).is_sequential
            assert g.node(p.node_ids[-1]).is_sequential

    def test_interior_is_combinational(self):
        g = figure2_graph()
        for p in PathSampler(k=1).sample(g):
            for nid in p.node_ids[1:-1]:
                assert not g.node(nid).is_sequential

    def test_node_ids_locate_path_in_design(self):
        """Section 2.2: a record is kept of where each path lives."""
        g = figure2_graph()
        for p in PathSampler(k=1).sample(g):
            for nid, token in zip(p.node_ids, p.tokens):
                assert g.node(nid).token == token
            for src, dst in zip(p.node_ids, p.node_ids[1:]):
                assert dst in g.successors(src)

    def test_deterministic_given_seed(self):
        g = figure2_graph()
        p1 = PathSampler(k=2, seed=7).sample(g)
        p2 = PathSampler(k=2, seed=7).sample(g)
        assert [p.tokens for p in p1] == [p.tokens for p in p2]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PathSampler(k=0)
        with pytest.raises(ValueError):
            PathSampler(max_len=1)

    def test_empty_graph(self):
        assert PathSampler().sample(CircuitGraph()) == []

    def test_no_duplicate_paths(self):
        c = Circuit()
        xs = [c.input(f"x{i}", 8) for i in range(8)]
        c.output("o", c.reg(adder_tree(c, xs)))
        paths = PathSampler(k=1, max_paths=1000).sample(c.finalize())
        keys = [p.node_ids for p in paths]
        assert len(keys) == len(set(keys))


class TestSamplingControl:
    def _fanout_graph(self, width=16):
        """One dff source fanning out to many independent dff sinks."""
        g = CircuitGraph()
        src = g.add_node("dff", 8)
        for _ in range(width):
            mid = g.add_node("add", 8)
            sink = g.add_node("dff", 8)
            g.add_edge(src, mid)
            g.add_edge(mid, sink)
        return g

    def test_k_controls_sample_count_within_budget(self):
        g = self._fanout_graph(16)
        exhaustive = PathSampler(k=1, max_paths=10000).sample(g)
        thinned = PathSampler(k=4, max_paths=6).sample(g)
        assert len(exhaustive) == 16
        # ceil(16/4) = 4 per round; rounds continue only up to the budget.
        assert 4 <= len(thinned) <= 6

    def test_k_thins_each_round(self):
        """One round of k=4 on a 16-way fanout explores 4 branches."""
        g = self._fanout_graph(16)
        paths = PathSampler(k=4, max_paths=4).sample(g)
        assert len(paths) == 4

    def test_coverage_rounds_reach_rare_branches(self):
        """Multi-round, coverage-guided sampling eventually visits every
        branch even under heavy thinning (the critical path must not be
        thinned away)."""
        g = self._fanout_graph(16)
        paths = PathSampler(k=4, max_paths=10000).sample(g)
        covered = {p.node_ids[1] for p in paths}
        assert len(covered) >= 12  # most of the 16 branches reached

    def test_k_infinity_like_samples_one_per_vertex_per_round(self):
        g = self._fanout_graph(16)
        paths = PathSampler(k=1000, max_paths=10000).sample(g)
        # one successor per round, at most 8 rounds
        assert 1 <= len(paths) <= 8

    def test_max_paths_budget(self):
        g = self._fanout_graph(32)
        paths = PathSampler(k=1, max_paths=5).sample(g)
        assert len(paths) == 5

    def test_max_len_drops_long_paths(self):
        g = CircuitGraph()
        prev = g.add_node("dff", 8)
        first = prev
        for _ in range(30):
            node = g.add_node("add", 8)
            g.add_edge(prev, node)
            prev = node
        end = g.add_node("dff", 8)
        g.add_edge(prev, end)
        short = PathSampler(k=1, max_len=10).sample(g)
        assert short == []
        full = PathSampler(k=1, max_len=64).sample(g)
        assert len(full) == 1
        assert len(full[0]) == 32

    def test_feedback_through_register_terminates(self):
        g = figure2_graph()
        paths = PathSampler(k=1, max_paths=100).sample(g)
        assert all(len(p) <= 4 for p in paths)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8), st.integers(2, 12))
    def test_property_more_k_never_more_paths(self, k, width):
        g = self._fanout_graph(width)
        base = len(PathSampler(k=1, max_paths=10000, seed=1).sample(g))
        thinned = len(PathSampler(k=k, max_paths=10000, seed=1).sample(g))
        assert thinned <= base
        assert thinned >= 1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_real_design_paths_wellformed(self, seed):
        c = Circuit()
        xs = [c.input(f"x{i}", 8) for i in range(4)]
        s = adder_tree(c, [x * x for x in xs])
        c.output("o", c.reg(s))
        g = c.finalize()
        for p in PathSampler(k=2, seed=seed).sample(g):
            assert len(p) >= 2
            assert g.node(p.node_ids[0]).is_sequential
            assert g.node(p.node_ids[-1]).is_sequential
