"""Bit-parity and robustness tests for the two path-sampler engines.

The array engine must be indistinguishable from the reference walk:
same paths, same order, same RNG consumption — across designs, ``k``
values, and truncation regimes.  Both engines must survive
combinational chains deeper than the Python recursion limit.
"""

import sys

import numpy as np
import pytest

from repro.core.sampler import PathSampler
from repro.designs import standard_designs
from repro.graphir import CircuitGraph, compile_graph


def random_graph(rng: np.random.Generator, n: int) -> CircuitGraph:
    """A random DAG-ish circuit: sequential endpoints, random fanout."""
    g = CircuitGraph(f"rand{n}")
    types = ["io", "dff", "add", "mul", "and", "mux", "sh", "eq"]
    for i in range(n):
        t = types[rng.integers(len(types))] if i >= 2 else "io"
        g.add_node(t, int(2 ** rng.integers(0, 7)))
    for i in range(n):
        for _ in range(int(rng.integers(0, 4))):
            j = int(rng.integers(0, n))
            if j != i:
                g.add_edge(min(i, j), max(i, j))
    return g


def as_tuples(paths):
    return [(p.node_ids, p.tokens) for p in paths]


class TestEngineParity:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_registry_designs_bit_identical(self, k):
        for entry in standard_designs()[::4]:  # strided: parity, not coverage
            graph = entry.module.elaborate()
            ref = PathSampler(k=k, engine="reference").sample(graph)
            arr = PathSampler(k=k, engine="array").sample(graph)
            assert as_tuples(ref) == as_tuples(arr), entry.name

    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("max_len", [4, 8, 64])
    def test_random_graphs_bit_identical(self, k, max_len):
        rng = np.random.default_rng(12345 + k)
        for trial in range(8):
            g = random_graph(rng, int(rng.integers(5, 60)))
            ref = PathSampler(k=k, max_len=max_len,
                              engine="reference").sample(g)
            arr = PathSampler(k=k, max_len=max_len, engine="array").sample(g)
            assert as_tuples(ref) == as_tuples(arr), f"trial {trial}"

    def test_compiled_input_accepted_by_both_engines(self):
        graph = standard_designs()[0].module.elaborate()
        cg = compile_graph(graph)
        ref = PathSampler(engine="reference").sample(cg)
        arr = PathSampler(engine="array").sample(cg)
        assert as_tuples(ref) == as_tuples(arr)
        assert as_tuples(arr) == as_tuples(PathSampler().sample(graph))


class TestRobustness:
    def deep_chain(self, depth: int) -> CircuitGraph:
        g = CircuitGraph("deep")
        g.add_node("dff", 8)
        for i in range(1, depth):
            g.add_node("add", 8)
            g.add_edge(i - 1, i)
        g.add_node("dff", 8)
        g.add_edge(depth - 1, depth)
        return g

    @pytest.mark.parametrize("engine", ["array", "reference"])
    def test_deeper_than_recursion_limit(self, engine):
        depth = sys.getrecursionlimit() + 500
        g = self.deep_chain(depth)
        paths = PathSampler(k=1, max_len=depth + 2, engine=engine).sample(g)
        assert len(paths) == 1
        assert len(paths[0]) == depth + 1

    @pytest.mark.parametrize("engine", ["array", "reference"])
    def test_work_stack_guard_raises_clearly(self, engine, monkeypatch):
        g = random_graph(np.random.default_rng(7), 40)
        monkeypatch.setattr(PathSampler, "_MAX_STACK", 2)
        with pytest.raises(RuntimeError, match="work stack exceeded"):
            PathSampler(k=1, engine=engine).sample(g)

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            PathSampler(engine="turbo")

    def test_engine_excluded_from_fingerprint(self):
        from repro.runtime.fingerprint import fingerprint_sampler

        assert (fingerprint_sampler(PathSampler(engine="array"))
                == fingerprint_sampler(PathSampler(engine="reference")))
