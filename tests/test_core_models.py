"""Tests for the Circuitformer, Aggregation MLP, metrics, and Table 8 data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FEATURE_DIM,
    AggregationMLP,
    Circuitformer,
    CircuitformerConfig,
    PathSampler,
    TargetScaler,
    design_features,
    encode_batch,
    format_table8,
    maep,
    qualitative_comparison,
    reduce_paths,
    rrse,
)
from repro.core.sampler import SampledPath
from repro.graphir import CircuitGraph, Vocabulary


class TestMetrics:
    def test_rrse_perfect_prediction(self):
        assert rrse([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_rrse_mean_predictor_is_one(self):
        actual = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, actual.mean())
        assert rrse(pred, actual) == pytest.approx(1.0)

    def test_rrse_scale_invariant(self):
        actual = np.array([1.0, 2.0, 3.0, 4.0])
        pred = actual * 1.1
        assert rrse(pred, actual) == pytest.approx(rrse(pred * 1000, actual * 1000))

    def test_rrse_constant_actual(self):
        assert rrse([5.0, 5.0], [5.0, 5.0]) == 0.0
        assert rrse([5.0, 6.0], [5.0, 5.0]) == float("inf")

    def test_rrse_needs_two_samples(self):
        with pytest.raises(ValueError):
            rrse([1.0], [1.0])

    def test_maep_basic(self):
        assert maep([110.0, 90.0], [100.0, 100.0]) == pytest.approx(10.0)

    def test_maep_zero_actual_raises(self):
        with pytest.raises(ValueError):
            maep([1.0], [0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rrse([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            maep([1.0, 2.0], [1.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(1, 100), min_size=3, max_size=10))
    def test_property_rrse_nonnegative(self, actual):
        pred = [a * 1.2 for a in actual]
        assert rrse(pred, actual) >= 0.0


class TestTargetScaler:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        labels = np.abs(rng.normal(100, 50, size=(20, 3))) + 1
        scaler = TargetScaler.fit(labels)
        np.testing.assert_allclose(scaler.inverse(scaler.transform(labels)), labels, rtol=1e-9)

    def test_transform_standardizes(self):
        rng = np.random.default_rng(1)
        labels = np.exp(rng.normal(3, 1, size=(200, 3)))
        z = TargetScaler.fit(labels).transform(labels)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        labels = np.ones((5, 3))
        scaler = TargetScaler.fit(labels)
        z = scaler.transform(labels)
        assert np.isfinite(z).all()


TINY = CircuitformerConfig(embedding_size=16, dim_feedforward=32, max_input_size=32)


class TestCircuitformer:
    def test_table2_defaults(self):
        cfg = CircuitformerConfig()
        assert cfg.vocab_size == 79
        assert cfg.hidden_layers == 2
        assert cfg.attention_heads == 2
        assert cfg.embedding_size == 128
        assert cfg.max_input_size == 512

    def test_encode_batch_shapes(self):
        vocab = Vocabulary.standard()
        ids, mask = encode_batch([("io8", "mul16"), ("dff16",)], vocab, max_len=4)
        assert ids.shape == (2, 5)
        assert ids[0, 0] == vocab.CLS
        assert mask[1, 2:].all()      # padded tail
        assert not mask[0, :3].any()  # cls + two tokens

    def test_encode_truncates(self):
        vocab = Vocabulary.standard()
        ids, _ = encode_batch([("io8",) * 100], vocab, max_len=8)
        assert ids.shape == (1, 9)

    def test_forward_shape(self):
        model = Circuitformer(TINY)
        ids, mask = encode_batch([("io8", "mul16", "add16", "dff16")], model.vocab, 8)
        out = model.forward(ids, mask)
        assert out.shape == (1, 3)

    def test_rejects_overlong_input(self):
        model = Circuitformer(TINY)
        ids = np.zeros((1, 40), dtype=np.int64)
        with pytest.raises(ValueError):
            model.forward(ids, ids == 0)

    def test_vocab_mismatch_raises(self):
        with pytest.raises(ValueError):
            Circuitformer(CircuitformerConfig(vocab_size=50))

    def test_predict_paths_physical_nonnegative(self):
        model = Circuitformer(TINY)
        preds = model.predict_paths([("io8", "mul16", "add16", "dff16"),
                                     ("dff16", "add16", "dff16")])
        assert preds.shape == (2, 3)
        assert (preds >= 0).all()

    def test_predict_empty(self):
        model = Circuitformer(TINY)
        assert model.predict_paths([]).shape == (0, 3)

    def test_order_sensitivity_capacity(self):
        """Different orderings of the same tokens get different embeddings."""
        model = Circuitformer(TINY)
        a = model.predict_paths([("io8", "mul16", "add16", "dff16")])
        b = model.predict_paths([("io8", "add16", "mul16", "dff16")])
        assert not np.allclose(a, b)

    def test_padding_does_not_change_prediction(self):
        model = Circuitformer(TINY)
        model.eval()
        seq = ("io8", "mul16", "add16", "dff16")
        ids1, m1 = encode_batch([seq], model.vocab, 4)
        ids2, m2 = encode_batch([seq], model.vocab, 20)
        import repro.nn as nn
        with nn.no_grad():
            o1 = model.forward(ids1, m1).numpy()
            o2 = model.forward(ids2, m2).numpy()
        np.testing.assert_allclose(o1, o2, atol=1e-8)

    def test_learns_path_length(self):
        """Sanity: the model can fit a toy 'longer path = bigger label' rule."""
        import repro.nn as nn
        from repro.core import TrainingConfig, train_circuitformer
        from repro.datagen import PathRecord

        rng = np.random.default_rng(0)
        records = []
        for _ in range(60):
            n = int(rng.integers(1, 10))
            tokens = ("dff16",) + ("add16",) * n + ("dff16",)
            value = 100.0 * n
            records.append(PathRecord(tokens, value, value, value))
        model = Circuitformer(TINY, seed=0)
        history = train_circuitformer(
            model, records,
            TrainingConfig(circuitformer_epochs=30, circuitformer_batch=16))
        assert history[-1].train_loss < history[0].train_loss
        short = model.predict_paths([("dff16", "add16", "dff16")])[0, 0]
        long = model.predict_paths([("dff16",) + ("add16",) * 8 + ("dff16",)])[0, 0]
        assert long > short


class TestAggregator:
    def test_reduce_paths_semantics(self):
        preds = np.array([[10.0, 1.0, 0.1], [30.0, 2.0, 0.2], [20.0, 3.0, 0.3]])
        red = reduce_paths(preds)
        np.testing.assert_allclose(red, [30.0, 6.0, 0.6])

    def test_reduce_empty(self):
        np.testing.assert_array_equal(reduce_paths(np.zeros((0, 3))), np.zeros(3))

    def test_reduce_with_activity_scales_power(self):
        preds = np.array([[10.0, 1.0, 1.0]])
        path = SampledPath(node_ids=(0, 1), tokens=("dff16", "dff16"))
        from repro.synth.power import DEFAULT_SEQ_ACTIVITY
        red_gated = reduce_paths(preds, [path], activity={0: DEFAULT_SEQ_ACTIVITY / 2,
                                                          1: DEFAULT_SEQ_ACTIVITY / 2})
        red_plain = reduce_paths(preds, [path])
        assert red_gated[2] == pytest.approx(0.5 * red_plain[2])
        assert red_gated[0] == red_plain[0]  # timing untouched

    def _toy_features(self, n=12, seed=0):
        """Small synthetic DesignFeatures population with size variation."""
        from repro.core import DesignFeatures

        rng = np.random.default_rng(seed)
        out = []
        for _ in range(n):
            scale = float(rng.uniform(1, 50))
            out.append(DesignFeatures(
                reduction=np.array([100.0 * scale, 10.0 * scale, scale]),
                path_stats=np.abs(rng.normal(size=7)) * scale,
                counts=np.abs(rng.normal(size=79)) * scale,
                structural=np.abs(rng.normal(size=6)) * scale,
                weighted=np.abs(rng.normal(size=7)) * scale,
            ))
        return out

    def test_design_features_dim(self):
        g = CircuitGraph()
        a = g.add_node("io", 8)
        d = g.add_node("dff", 8)
        g.add_edge(a, d)
        feats = design_features(g, np.array([1.0, 2.0, 3.0]))
        assert np.isfinite(feats).all()

    def test_featurize_design(self):
        from repro.core import featurize_design

        g = CircuitGraph()
        a = g.add_node("io", 8)
        d = g.add_node("dff", 8)
        g.add_edge(a, d)
        preds = np.array([[10.0, 1.0, 0.1]])
        from repro.core.sampler import SampledPath
        paths = [SampledPath((a, d), ("io8", "dff8"))]
        feats = featurize_design(g, preds, paths)
        assert feats.counts.sum() == 2
        np.testing.assert_allclose(feats.reduction, [10.0, 1.0, 0.1])

    def test_mlp_three_heads_of_three_layers(self):
        mlp = AggregationMLP()
        assert len(mlp.heads) == 3
        from repro.nn import Linear
        for head in mlp.heads:
            linears = [s for s in head if isinstance(s, Linear)]
            assert len(linears) == 4  # 3 hidden of 32 + output
            assert all(l.out_features == 32 for l in linears[:3])

    def test_physics_layer_recovers_additive_area(self):
        feats = self._toy_features(16)
        # area exactly additive in counts
        weights = np.abs(np.random.default_rng(1).normal(size=79))
        labels = np.stack([
            [f.reduction[0] * 2.0, f.counts @ weights + 5.0, 1.0]
            for f in feats])
        mlp = AggregationMLP()
        mlp.fit_physics(feats, labels)
        for f, lab in zip(feats[:4], labels[:4]):
            phys = mlp.physics_predict(f)
            assert phys[1] == pytest.approx(lab[1], rel=0.05)
            assert phys[0] == pytest.approx(lab[0], rel=0.05)

    def test_physics_before_fit_raises(self):
        mlp = AggregationMLP()
        with pytest.raises(RuntimeError):
            mlp.physics_predict(self._toy_features(1)[0])

    def test_predict_shape_and_domain(self):
        feats = self._toy_features(8)
        labels = np.abs(np.random.default_rng(2).normal(size=(8, 3))) * 100 + 1
        mlp = AggregationMLP()
        mlp.fit_physics(feats, labels)
        physics = np.stack([mlp.physics_predict(f) for f in feats])
        log_inputs = np.stack([f.log_vector(p) for f, p in zip(feats, physics)])
        residuals = np.log1p(labels) - np.log1p(physics)
        mlp.fit_scalers(log_inputs, residuals)
        out = mlp.predict(feats[0])
        assert out.shape == (3,)
        assert (out >= 0).all()


class TestTable8:
    def test_sns_capabilities(self):
        sns = qualitative_comparison("SNS")
        assert sns["Timing Prediction"] and sns["Area Prediction"] and sns["Power Prediction"]
        assert not sns["FPGA Design Prediction"]
        assert sns["Support Large Designs (>1M gates)"]

    def test_dsage_row_matches_paper(self):
        d = qualitative_comparison("D-SAGE")
        assert d["Timing Prediction"] and d["FPGA Design Prediction"]
        assert not d["Area Prediction"] and not d["Power Prediction"]

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            qualitative_comparison("GPT-9")

    def test_format_contains_all_rows(self):
        text = format_table8()
        assert "Timing Prediction" in text
        assert "SNS" in text
        assert text.count("\n") == 8


class TestPredictPathsDedup:
    def test_duplicates_get_identical_predictions(self):
        model = Circuitformer(TINY)
        seqs = [("io8", "mul16", "add16", "dff16"),
                ("dff16", "add16", "dff16"),
                ("io8", "mul16", "add16", "dff16")]
        preds = model.predict_paths(seqs)
        np.testing.assert_array_equal(preds[0], preds[2])
        assert preds.shape == (3, 3)

    def test_dedup_matches_naive_order(self):
        """Results come back in input order, not unique order."""
        model = Circuitformer(TINY)
        a = ("io8", "xor8", "dff8")
        b = ("dff16", "mul32", "dff32")
        batched = model.predict_paths([b, a, b, a])
        solo_a = model.predict_paths([a])[0]
        solo_b = model.predict_paths([b])[0]
        np.testing.assert_allclose(batched[0], solo_b, rtol=1e-12)
        np.testing.assert_allclose(batched[1], solo_a, rtol=1e-12)
        np.testing.assert_allclose(batched[2], solo_b, rtol=1e-12)
