"""Tests for the memory-subsystem design generators."""

import pytest

from repro.designs import CacheController, DMAEngine
from repro.graphir import token_counts
from repro.synth import Synthesizer


class TestCacheController:
    def test_elaborates_and_synthesizes(self):
        g = CacheController(ways=2, sets=4).elaborate()
        g.validate()
        result = Synthesizer(effort="low").synthesize(g)
        assert result.area_um2 > 0 and result.timing_ps > 0

    def test_area_scales_with_ways(self):
        synth = Synthesizer(effort="low")
        a2 = synth.synthesize(CacheController(ways=2, sets=4).elaborate()).area_um2
        a8 = synth.synthesize(CacheController(ways=8, sets=4).elaborate()).area_um2
        assert a8 > 2.5 * a2

    def test_area_scales_with_sets(self):
        synth = Synthesizer(effort="low")
        a4 = synth.synthesize(CacheController(ways=2, sets=4).elaborate()).area_um2
        a16 = synth.synthesize(CacheController(ways=2, sets=16).elaborate()).area_um2
        assert a16 > 2 * a4

    def test_has_tag_comparators_per_way(self):
        counts = token_counts(CacheController(ways=4, sets=4, tag_bits=20).elaborate())
        # tag compare: one eq per way at the stored-tag width (20 -> eq16)
        assert counts["eq16"] >= 4


class TestDMAEngine:
    def test_elaborates_and_synthesizes(self):
        g = DMAEngine(channels=2).elaborate()
        g.validate()
        result = Synthesizer(effort="low").synthesize(g)
        assert result.power_mw > 0

    def test_channels_scale_hardware(self):
        g2 = DMAEngine(channels=2).elaborate()
        g8 = DMAEngine(channels=8).elaborate()
        assert g8.num_nodes > 2 * g2.num_nodes

    def test_has_per_channel_counters(self):
        counts = token_counts(DMAEngine(channels=4, addr_bits=32).elaborate())
        assert counts["dff32"] >= 4   # per-channel source address registers
        assert counts["dff16"] >= 5   # per-channel length + beat counters

    def test_works_with_generic_dse(self):
        from repro.dse import DesignSpaceExplorer, ParameterGrid

        explorer = DesignSpaceExplorer(DMAEngine, Synthesizer(effort="low"))
        result = explorer.explore(ParameterGrid({"channels": (1, 2, 4)}))
        areas = {p.params["channels"]: p.area_um2 for p in result.points}
        assert areas[1] < areas[2] < areas[4]
